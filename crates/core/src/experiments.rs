//! Experiment definitions: which cells each of the paper's experiments
//! contains and the composite result types for the prompt-sensitivity and
//! few-shot studies.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use wfspeak_corpus::prompts::PromptVariant;
use wfspeak_corpus::{translation_pair_label, translation_pairs, WorkflowSystemId};
use wfspeak_metrics::Summary;

use crate::result::ExperimentResult;

/// The three workflow experiments of Section 3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Generate a workflow configuration file (Table 1).
    Configuration,
    /// Annotate task code with a system's API (Table 2).
    Annotation,
    /// Translate task code between systems (Table 3).
    Translation,
}

impl ExperimentKind {
    /// All experiments in paper order.
    pub const ALL: [ExperimentKind; 3] = [
        ExperimentKind::Configuration,
        ExperimentKind::Annotation,
        ExperimentKind::Translation,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentKind::Configuration => "Workflow configuration",
            ExperimentKind::Annotation => "Task code annotation",
            ExperimentKind::Translation => "Task code translation",
        }
    }

    /// Which paper table this experiment reproduces.
    pub fn paper_table(&self) -> &'static str {
        match self {
            ExperimentKind::Configuration => "Table 1",
            ExperimentKind::Annotation => "Table 2",
            ExperimentKind::Translation => "Table 3",
        }
    }

    /// The row labels of this experiment's table, in paper order.
    pub fn row_labels(&self) -> Vec<String> {
        match self {
            ExperimentKind::Configuration => WorkflowSystemId::configuration_systems()
                .into_iter()
                .map(|s| s.name().to_owned())
                .collect(),
            ExperimentKind::Annotation => WorkflowSystemId::annotation_systems()
                .into_iter()
                .map(|s| s.name().to_owned())
                .collect(),
            ExperimentKind::Translation => translation_pairs()
                .into_iter()
                .map(|(s, t)| translation_pair_label(s, t))
                .collect(),
        }
    }
}

impl std::fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of the prompt-sensitivity study (Figure 1): one full experiment
/// result per prompt variant, for each of the three experiments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PromptSensitivity {
    /// `experiment -> variant label -> result`.
    pub results: BTreeMap<ExperimentKind, BTreeMap<String, ExperimentResult>>,
}

impl PromptSensitivity {
    /// The BLEU mean for one `(experiment, variant, row, model)` heatmap cell.
    pub fn heatmap_cell(
        &self,
        experiment: ExperimentKind,
        variant: PromptVariant,
        row: &str,
        model: &str,
    ) -> Option<Summary> {
        self.results
            .get(&experiment)?
            .get(variant.label())
            .map(|r| r.bleu.cell(row, model))
    }

    /// Render the Figure 1 heatmap for one experiment and one row (system or
    /// translation pair): prompt variants as rows, models as columns.
    pub fn render_heatmap(&self, experiment: ExperimentKind, row: &str) -> String {
        let mut out = format!("{} — {}\n", experiment.name(), row);
        let Some(by_variant) = self.results.get(&experiment) else {
            return out;
        };
        let models: Vec<String> = by_variant
            .values()
            .next()
            .map(|r| r.bleu.cols().to_vec())
            .unwrap_or_default();
        out.push_str(&format!("{:<18}", "Prompt type"));
        for m in &models {
            out.push_str(&format!("{m:>18}"));
        }
        out.push('\n');
        for variant in PromptVariant::ALL {
            let Some(result) = by_variant.get(variant.label()) else {
                continue;
            };
            out.push_str(&format!("{:<18}", variant.label()));
            for m in &models {
                out.push_str(&format!("{:>18.1}", result.bleu.cell(row, m).mean));
            }
            out.push('\n');
        }
        out
    }

    /// For one experiment row, the best prompt variant per model (by BLEU
    /// mean).  The paper's finding is that this differs across models.
    pub fn best_variant_per_model(
        &self,
        experiment: ExperimentKind,
        row: &str,
    ) -> BTreeMap<String, String> {
        let mut best: BTreeMap<String, (String, f64)> = BTreeMap::new();
        if let Some(by_variant) = self.results.get(&experiment) {
            for (variant, result) in by_variant {
                for model in result.bleu.cols() {
                    let mean = result.bleu.cell(row, model).mean;
                    let entry = best
                        .entry(model.clone())
                        .or_insert_with(|| (variant.clone(), mean));
                    if mean > entry.1 {
                        *entry = (variant.clone(), mean);
                    }
                }
            }
        }
        best.into_iter().map(|(m, (v, _))| (m, v)).collect()
    }
}

/// Result of the few-shot prompting study (Table 5): zero-shot vs few-shot
/// configuration scores averaged over the workflow systems.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FewShotComparison {
    /// Zero-shot (original prompt) result.
    pub zero_shot: ExperimentResult,
    /// Few-shot (prompt plus 2-node exemplar) result.
    pub few_shot: ExperimentResult,
}

impl FewShotComparison {
    /// Per-model averages over systems, as Table 5 reports:
    /// `(model, zero-shot BLEU, few-shot BLEU, zero-shot ChrF, few-shot ChrF)`.
    pub fn per_model_rows(&self) -> Vec<(String, Summary, Summary, Summary, Summary)> {
        self.zero_shot
            .bleu
            .cols()
            .iter()
            .map(|model| {
                (
                    model.clone(),
                    self.zero_shot.bleu.col_overall(model),
                    self.few_shot.bleu.col_overall(model),
                    self.zero_shot.chrf.col_overall(model),
                    self.few_shot.chrf.col_overall(model),
                )
            })
            .collect()
    }

    /// Render in the paper's Table 5 layout.
    pub fn render_table(&self) -> String {
        let mut out = String::from(
            "Table 5: few-shot vs zero-shot prompting (workflow configuration, averaged over systems)\n",
        );
        out.push_str(&format!(
            "{:<24}{:>14}{:>14}{:>14}{:>14}\n",
            "Approach / model", "BLEU (zero)", "ChrF (zero)", "BLEU (few)", "ChrF (few)"
        ));
        for (model, zb, fb, zc, fc) in self.per_model_rows() {
            out.push_str(&format!(
                "{model:<24}{:>14}{:>14}{:>14}{:>14}\n",
                zb.paper_format(),
                zc.paper_format(),
                fb.paper_format(),
                fc.paper_format()
            ));
        }
        out
    }

    /// True when few-shot improves the BLEU mean for every model (the
    /// paper's headline finding for this experiment).
    pub fn few_shot_improves_all_models(&self) -> bool {
        self.per_model_rows()
            .iter()
            .all(|(_, zero_bleu, few_bleu, _, _)| few_bleu.mean > zero_bleu.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_row_labels_match_paper_tables() {
        assert_eq!(
            ExperimentKind::Configuration.row_labels(),
            vec!["ADIOS2", "Henson", "Wilkins"]
        );
        assert_eq!(
            ExperimentKind::Annotation.row_labels(),
            vec!["ADIOS2", "Henson", "PyCOMPSs", "Parsl"]
        );
        assert_eq!(
            ExperimentKind::Translation.row_labels(),
            vec![
                "Henson to ADIOS2",
                "ADIOS2 to Henson",
                "Parsl to PyCOMPSs",
                "PyCOMPSs to Parsl"
            ]
        );
    }

    #[test]
    fn experiment_names_and_tables() {
        assert_eq!(ExperimentKind::Configuration.paper_table(), "Table 1");
        assert_eq!(ExperimentKind::Translation.name(), "Task code translation");
        assert_eq!(
            format!("{}", ExperimentKind::Annotation),
            "Task code annotation"
        );
    }

    #[test]
    fn few_shot_comparison_rows_and_improvement() {
        let mut comparison = FewShotComparison::default();
        for system in ["ADIOS2", "Henson"] {
            comparison.zero_shot.push(system, "o3", 35.0, 38.0);
            comparison.few_shot.push(system, "o3", 90.0, 91.0);
        }
        let rows = comparison.per_model_rows();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].2.mean > rows[0].1.mean);
        assert!(comparison.few_shot_improves_all_models());
        let table = comparison.render_table();
        assert!(table.contains("Table 5"));
        assert!(table.contains("o3"));
    }

    #[test]
    fn prompt_sensitivity_heatmap_and_best_variant() {
        let mut ps = PromptSensitivity::default();
        let mut by_variant = BTreeMap::new();
        for (variant, o3_score, gem_score) in [("original", 60.0, 70.0), ("detailed", 65.0, 66.0)] {
            let mut r = ExperimentResult::default();
            r.push("ADIOS2", "o3", o3_score, o3_score);
            r.push("ADIOS2", "Gemini-2.5-Pro", gem_score, gem_score);
            by_variant.insert(variant.to_string(), r);
        }
        ps.results.insert(ExperimentKind::Configuration, by_variant);

        let cell = ps
            .heatmap_cell(
                ExperimentKind::Configuration,
                PromptVariant::Original,
                "ADIOS2",
                "o3",
            )
            .unwrap();
        assert!((cell.mean - 60.0).abs() < 1e-9);

        let best = ps.best_variant_per_model(ExperimentKind::Configuration, "ADIOS2");
        assert_eq!(best["o3"], "detailed");
        assert_eq!(best["Gemini-2.5-Pro"], "original");

        let heatmap = ps.render_heatmap(ExperimentKind::Configuration, "ADIOS2");
        assert!(heatmap.contains("original"));
        assert!(heatmap.contains("detailed"));
        assert!(heatmap.contains("o3"));
    }

    #[test]
    fn empty_prompt_sensitivity_renders_header_only() {
        let ps = PromptSensitivity::default();
        let text = ps.render_heatmap(ExperimentKind::Annotation, "Parsl");
        assert!(text.contains("Task code annotation"));
        assert!(ps
            .heatmap_cell(
                ExperimentKind::Annotation,
                PromptVariant::Original,
                "Parsl",
                "o3"
            )
            .is_none());
    }
}
