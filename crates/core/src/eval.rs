//! The end-to-end evaluation pipeline: code extraction → API-call
//! comparison → BLEU/ChrF scoring.
//!
//! The paper's headline analysis is not similarity metrics alone: a model
//! response is first stripped down to its code payload
//! ([`wfspeak_codemodel::extract_code`]), the payload's API calls are
//! compared against the reference ([`wfspeak_codemodel::compare_calls`] —
//! missing / extra / hallucinated calls), and only then are BLEU and ChrF
//! computed.  This module chains those stages behind one implementation,
//! [`evaluate_prepared`], that every surface shares:
//!
//! * [`EvalPipeline`] — standalone pipeline with its own scorers and shared
//!   [`ReferenceCache`], for callers that bring their own responses;
//! * [`Benchmark::run_evaluation`] — the pipeline over a whole experiment
//!   grid, sharded across the worker pool ([`crate::parallel::par_map`])
//!   with the benchmark's shared reference cache;
//! * the scoring service's `evaluate` request (in `wfspeak-service`) calls
//!   [`evaluate_prepared`] directly, so served evaluations are bit-identical
//!   to in-process ones.

use std::collections::BTreeSet;
use std::sync::Arc;

use wfspeak_codemodel::{compare_calls, extract_code, CallComparison, Language};
use wfspeak_corpus::prompts::{
    annotation_prompt, configuration_prompt, translation_prompt, PromptVariant,
};
use wfspeak_corpus::references::{
    annotation_reference, configuration_reference, translation_reference,
};
use wfspeak_corpus::{translation_pair_label, translation_pairs, WorkflowSystemId};
use wfspeak_llm::{CompletionRequest, LlmClient, SamplingParams};
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};
use wfspeak_systems::api::catalog_for;

use crate::experiments::ExperimentKind;
use crate::parallel::par_map;
use crate::runner::{Benchmark, PreparedPair, ReferenceCache};

/// What the call-comparison stage needs to know about a workflow system:
/// the task-code language plus the system's API family and catalogue.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// The profiled system.
    pub system: WorkflowSystemId,
    /// Language its task codes are written in.
    pub language: Language,
    prefixes: Vec<&'static str>,
    functions: Vec<&'static str>,
}

impl SystemProfile {
    /// Build the profile for a system from its API catalogue.
    pub fn for_system(system: WorkflowSystemId) -> SystemProfile {
        let catalog = catalog_for(system);
        SystemProfile {
            system,
            language: if system.uses_python_tasks() {
                Language::Python
            } else {
                Language::C
            },
            prefixes: catalog.prefixes.clone(),
            functions: catalog.function_names(),
        }
    }

    /// Resolve a profile from a system display name (case-insensitive).
    pub fn by_name(name: &str) -> Option<SystemProfile> {
        WorkflowSystemId::from_name(name).map(SystemProfile::for_system)
    }

    /// Identifier prefixes marking a call as belonging to the API family.
    pub fn prefixes(&self) -> &[&'static str] {
        &self.prefixes
    }

    /// The catalogue of real API functions.
    pub fn functions(&self) -> &[&'static str] {
        &self.functions
    }
}

/// One response taken through the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The extracted code payload that was scored.
    pub code: String,
    /// sacrebleu-style BLEU of the payload against the reference (0–100).
    pub bleu: f64,
    /// Character n-gram F-score of the payload (0–100).
    pub chrf: f64,
    /// API-call comparison of the payload against the reference.
    pub calls: CallComparison,
}

/// Run one response through the full pipeline against a prepared reference.
///
/// This is the *only* pipeline implementation: the standalone
/// [`EvalPipeline`], the grid evaluator ([`Benchmark::run_evaluation`]) and
/// the scoring service all call it, so their results are bit-identical to
/// composing `extract_code` + `compare_calls` + `score_prepared` by hand
/// (pinned by the workspace integration tests).
pub fn evaluate_prepared(
    bleu: &BleuScorer,
    chrf: &ChrfScorer,
    prepared: &PreparedPair,
    profile: &SystemProfile,
    response: &str,
) -> Evaluation {
    let code = extract_code(response);
    let calls = compare_calls(
        &code,
        prepared.bleu.source(),
        profile.language,
        profile.prefixes(),
        profile.functions(),
    );
    Evaluation {
        bleu: bleu.score_prepared(&code, &prepared.bleu),
        chrf: chrf.score_prepared(&code, &prepared.chrf),
        code,
        calls,
    }
}

/// A standalone evaluation pipeline: scorers plus a shared
/// [`ReferenceCache`], for evaluating caller-supplied responses outside a
/// [`Benchmark`] grid.
#[derive(Debug, Default)]
pub struct EvalPipeline {
    bleu: BleuScorer,
    chrf: ChrfScorer,
    references: ReferenceCache,
}

impl EvalPipeline {
    /// A pipeline with default scorers and an empty cache.
    pub fn new() -> EvalPipeline {
        EvalPipeline::default()
    }

    /// The shared prepared-reference cache.
    pub fn reference_cache(&self) -> &ReferenceCache {
        &self.references
    }

    /// Fetch (or prepare on first use) the prepared pair for `reference`.
    pub fn prepare(&self, reference: &str) -> Arc<PreparedPair> {
        self.references
            .get_or_prepare(&self.bleu, &self.chrf, reference)
    }

    /// Evaluate one response against `reference` for `profile`'s system.
    pub fn evaluate(&self, reference: &str, profile: &SystemProfile, response: &str) -> Evaluation {
        let prepared = self.prepare(reference);
        evaluate_prepared(&self.bleu, &self.chrf, &prepared, profile, response)
    }

    /// Evaluate a batch of responses against one reference, in order.
    pub fn evaluate_batch(
        &self,
        reference: &str,
        profile: &SystemProfile,
        responses: &[String],
    ) -> Vec<Evaluation> {
        let prepared = self.prepare(reference);
        responses
            .iter()
            .map(|response| evaluate_prepared(&self.bleu, &self.chrf, &prepared, profile, response))
            .collect()
    }
}

/// One fully evaluated grid cell: every trial of one `(row, model)` pair.
#[derive(Debug, Clone)]
pub struct EvaluatedCell {
    /// Row label (system name, or `"A to B"` for translation pairs).
    pub row: String,
    /// Model display name.
    pub model: String,
    /// Per-trial evaluations, in seed order.
    pub trials: Vec<Evaluation>,
}

impl EvaluatedCell {
    fn mean(&self, f: impl Fn(&Evaluation) -> f64) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(f).sum::<f64>() / self.trials.len() as f64
    }

    /// Mean BLEU over the cell's trials.
    pub fn mean_bleu(&self) -> f64 {
        self.mean(|e| e.bleu)
    }

    /// Mean ChrF over the cell's trials.
    pub fn mean_chrf(&self) -> f64 {
        self.mean(|e| e.chrf)
    }

    /// Mean call recall over the cell's trials.
    pub fn mean_call_recall(&self) -> f64 {
        self.mean(|e| e.calls.call_recall())
    }

    /// Mean call precision over the cell's trials.
    pub fn mean_call_precision(&self) -> f64 {
        self.mean(|e| e.calls.call_precision())
    }

    /// Hallucinated call count summed over the cell's trials.
    pub fn hallucinated_calls(&self) -> usize {
        self.trials.iter().map(|e| e.calls.hallucinated.len()).sum()
    }
}

/// A whole experiment grid taken through the evaluation pipeline.
#[derive(Debug, Clone)]
pub struct EvaluationGrid {
    /// Which experiment was evaluated.
    pub kind: ExperimentKind,
    /// Cells in declared order: row-major, model-minor.
    pub cells: Vec<EvaluatedCell>,
}

impl EvaluationGrid {
    /// Look up one cell by row and model label.
    pub fn cell(&self, row: &str, model: &str) -> Option<&EvaluatedCell> {
        self.cells.iter().find(|c| c.row == row && c.model == model)
    }

    /// Total responses evaluated (cells × trials).
    pub fn total_evaluations(&self) -> usize {
        self.cells.iter().map(|c| c.trials.len()).sum()
    }

    /// Hallucinated call count across the whole grid.
    pub fn hallucinated_calls(&self) -> usize {
        self.cells.iter().map(|c| c.hallucinated_calls()).sum()
    }

    /// The distinct hallucinated API names observed anywhere in the grid
    /// (the paper's qualitative finding, e.g. `henson_put`).
    pub fn hallucinated_names(&self) -> BTreeSet<String> {
        self.cells
            .iter()
            .flat_map(|c| &c.trials)
            .flat_map(|e| e.calls.hallucinated.iter().cloned())
            .collect()
    }

    fn grid_mean(&self, f: impl Fn(&Evaluation) -> f64) -> f64 {
        let n = self.total_evaluations();
        if n == 0 {
            return 0.0;
        }
        self.cells
            .iter()
            .flat_map(|c| &c.trials)
            .map(f)
            .sum::<f64>()
            / n as f64
    }

    /// Mean BLEU over every evaluation in the grid.
    pub fn mean_bleu(&self) -> f64 {
        self.grid_mean(|e| e.bleu)
    }

    /// Mean ChrF over every evaluation in the grid.
    pub fn mean_chrf(&self) -> f64 {
        self.grid_mean(|e| e.chrf)
    }

    /// Mean call recall over every evaluation in the grid.
    pub fn mean_call_recall(&self) -> f64 {
        self.grid_mean(|e| e.calls.call_recall())
    }

    /// Render a fixed-width summary table: one line per cell with BLEU,
    /// ChrF, call recall/precision and hallucinated-call counts, plus a
    /// grid-level footer.
    pub fn render_summary(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        out.push_str(&format!(
            "{:<22} {:<16} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
            "row", "model", "BLEU", "ChrF", "recall", "prec", "halluc"
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<22} {:<16} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7}\n",
                cell.row,
                cell.model,
                cell.mean_bleu(),
                cell.mean_chrf(),
                cell.mean_call_recall(),
                cell.mean_call_precision(),
                cell.hallucinated_calls(),
            ));
        }
        let names: Vec<String> = self.hallucinated_names().into_iter().collect();
        out.push_str(&format!(
            "overall: {} evaluations, mean BLEU {:.2}, mean ChrF {:.2}, {} hallucinated calls",
            self.total_evaluations(),
            self.mean_bleu(),
            self.mean_chrf(),
            self.hallucinated_calls(),
        ));
        if !names.is_empty() {
            out.push_str(&format!(" (distinct: {})", names.join(", ")));
        }
        out.push('\n');
        out
    }
}

/// One grid cell's evaluation work: a client queried with one prompt, every
/// trial response taken through the full pipeline.
struct EvalCellJob<'a> {
    row: String,
    model: String,
    client: &'a dyn LlmClient,
    prompt: String,
    prepared: Arc<PreparedPair>,
    profile: Arc<SystemProfile>,
}

impl Benchmark {
    /// The `(row, reference, prompt, profile)` tuples of one experiment, in
    /// the paper's declared row order.  The profiled system is the one whose
    /// API surface the generated code must use (for translation, the
    /// *target* system).
    fn evaluation_rows(
        &self,
        kind: ExperimentKind,
        variant: PromptVariant,
    ) -> Vec<(String, &'static str, String, Arc<SystemProfile>)> {
        match kind {
            ExperimentKind::Configuration => WorkflowSystemId::configuration_systems()
                .into_iter()
                .map(|system| {
                    let reference = configuration_reference(system)
                        .expect("configuration systems always have a reference");
                    (
                        system.name().to_owned(),
                        reference,
                        configuration_prompt(system, variant),
                        Arc::new(SystemProfile::for_system(system)),
                    )
                })
                .collect(),
            ExperimentKind::Annotation => WorkflowSystemId::annotation_systems()
                .into_iter()
                .map(|system| {
                    let reference = annotation_reference(system)
                        .expect("annotation systems always have a reference");
                    (
                        system.name().to_owned(),
                        reference,
                        annotation_prompt(system, variant),
                        Arc::new(SystemProfile::for_system(system)),
                    )
                })
                .collect(),
            ExperimentKind::Translation => translation_pairs()
                .into_iter()
                .map(|(source, target)| {
                    let reference = translation_reference(target)
                        .expect("translation targets always have a reference");
                    (
                        translation_pair_label(source, target),
                        reference,
                        translation_prompt(source, target, variant),
                        Arc::new(SystemProfile::for_system(target)),
                    )
                })
                .collect(),
        }
    }

    /// Run one evaluation cell: query the client once per trial and take
    /// every response through the full pipeline.
    fn evaluate_cell(&self, job: &EvalCellJob<'_>) -> Vec<Evaluation> {
        self.config
            .trial_seeds()
            .into_iter()
            .map(|seed| {
                let params = SamplingParams {
                    temperature: self.config.temperature,
                    top_p: self.config.top_p,
                    seed,
                };
                let response = job
                    .client
                    .complete(&CompletionRequest::new(job.prompt.clone(), params));
                evaluate_prepared(
                    &self.bleu,
                    &self.chrf,
                    &job.prepared,
                    &job.profile,
                    &response.text,
                )
            })
            .collect()
    }

    /// Take a whole experiment grid through the evaluation pipeline:
    /// extraction, API-call comparison and BLEU/ChrF for every
    /// `(row × model × trial)` response.
    ///
    /// Cells are evaluated in parallel on the worker pool
    /// ([`crate::parallel::par_map`]) while the result preserves declared
    /// order (row-major, model-minor, trials in seed order), and references
    /// are prepared once through the benchmark's shared [`ReferenceCache`] —
    /// the same cache the scoring grid uses.
    pub fn run_evaluation(&self, kind: ExperimentKind, variant: PromptVariant) -> EvaluationGrid {
        let mut jobs = Vec::new();
        for (row, reference, prompt, profile) in self.evaluation_rows(kind, variant) {
            let prepared = self
                .references
                .get_or_prepare(&self.bleu, &self.chrf, reference);
            for client in &self.clients {
                jobs.push(EvalCellJob {
                    row: row.clone(),
                    model: client.model().name().to_owned(),
                    client: client.as_ref(),
                    prompt: prompt.clone(),
                    prepared: Arc::clone(&prepared),
                    profile: Arc::clone(&profile),
                });
            }
        }
        let evaluated = par_map(&jobs, |job| self.evaluate_cell(job));
        EvaluationGrid {
            kind,
            cells: jobs
                .into_iter()
                .zip(evaluated)
                .map(|(job, trials)| EvaluatedCell {
                    row: job.row,
                    model: job.model,
                    trials,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BenchmarkConfig;

    fn quick_benchmark() -> Benchmark {
        Benchmark::with_simulated_models(BenchmarkConfig {
            trials: 2,
            ..BenchmarkConfig::default()
        })
    }

    #[test]
    fn profiles_pick_language_from_system() {
        assert_eq!(
            SystemProfile::for_system(WorkflowSystemId::Henson).language,
            Language::C
        );
        assert_eq!(
            SystemProfile::for_system(WorkflowSystemId::Parsl).language,
            Language::Python
        );
        assert!(SystemProfile::by_name("henson").is_some());
        assert!(SystemProfile::by_name("slurm").is_none());
    }

    #[test]
    fn pipeline_detects_hallucinated_calls_in_fenced_response() {
        let pipeline = EvalPipeline::new();
        let profile = SystemProfile::for_system(WorkflowSystemId::Henson);
        let reference = "henson_save_int(\"t\", t);\nhenson_yield();";
        let response =
            "Here is the annotated code:\n```c\nhenson_put(\"t\", t);\nhenson_yield();\n```";
        let evaluation = pipeline.evaluate(reference, &profile, response);
        assert!(evaluation.code.starts_with("henson_put"));
        assert_eq!(evaluation.calls.hallucinated, vec!["henson_put".to_owned()]);
        assert!(evaluation.calls.missing.contains(&"henson_save_int".into()));
        assert!(evaluation.bleu < 100.0);
        assert!(evaluation.chrf > 0.0);
    }

    #[test]
    fn pipeline_matches_direct_stage_composition() {
        let pipeline = EvalPipeline::new();
        let profile = SystemProfile::for_system(WorkflowSystemId::PyCompss);
        let reference = "compss_wait_on_file(out)\nprocess(out)";
        let response = "```python\ncompss_wait_on(out)\nprocess(out)\n```";
        let evaluation = pipeline.evaluate(reference, &profile, response);

        let code = extract_code(response);
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        assert_eq!(evaluation.code, code);
        assert_eq!(
            evaluation.bleu.to_bits(),
            bleu.score(&code, reference).to_bits()
        );
        assert_eq!(
            evaluation.chrf.to_bits(),
            chrf.score(&code, reference).to_bits()
        );
        assert_eq!(
            evaluation.calls,
            compare_calls(
                &code,
                reference,
                Language::Python,
                profile.prefixes(),
                profile.functions()
            )
        );
    }

    #[test]
    fn pipeline_shares_reference_preparations() {
        let pipeline = EvalPipeline::new();
        let profile = SystemProfile::for_system(WorkflowSystemId::Henson);
        pipeline.evaluate_batch("ref", &profile, &["a".into(), "b".into()]);
        pipeline.evaluate("ref", &profile, "c");
        let stats = pipeline.reference_cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1, "batch prepares once, evaluate hits");
    }

    #[test]
    fn evaluation_grid_has_experiment_shape() {
        let benchmark = quick_benchmark();
        let grid = benchmark.run_evaluation(ExperimentKind::Annotation, PromptVariant::Original);
        assert_eq!(grid.kind, ExperimentKind::Annotation);
        assert_eq!(grid.cells.len(), 4 * 4, "4 systems × 4 models");
        assert_eq!(grid.total_evaluations(), 4 * 4 * 2);
        for cell in &grid.cells {
            assert_eq!(cell.trials.len(), 2);
            for evaluation in &cell.trials {
                assert!(!evaluation.code.is_empty());
            }
        }
        assert!(grid.mean_bleu() > 0.0);
        assert!(grid.mean_chrf() > 0.0);
    }

    #[test]
    fn evaluation_grid_is_deterministic() {
        let a =
            quick_benchmark().run_evaluation(ExperimentKind::Translation, PromptVariant::Original);
        let b =
            quick_benchmark().run_evaluation(ExperimentKind::Translation, PromptVariant::Original);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.row, cb.row);
            assert_eq!(ca.model, cb.model);
            assert_eq!(ca.trials, cb.trials);
        }
    }

    #[test]
    fn evaluation_reuses_the_scoring_grid_cache() {
        let benchmark = quick_benchmark();
        benchmark.run_configuration(PromptVariant::Original, false);
        let prepared_before = benchmark.reference_cache().len();
        benchmark.run_evaluation(ExperimentKind::Configuration, PromptVariant::Original);
        assert_eq!(
            benchmark.reference_cache().len(),
            prepared_before,
            "evaluation hits the references the scoring grid already prepared"
        );
    }

    #[test]
    fn summary_renders_rows_models_and_totals() {
        let benchmark = quick_benchmark();
        let grid = benchmark.run_evaluation(ExperimentKind::Annotation, PromptVariant::Original);
        let summary = grid.render_summary("Annotation evaluation");
        assert!(summary.starts_with("Annotation evaluation"));
        assert!(summary.contains("ADIOS2"));
        assert!(summary.contains("o3"));
        assert!(summary.contains("overall:"));
    }
}
