//! Dynamic execution: run generated artifacts (configuration files, or
//! annotated task code for Parsl/PyCOMPSs) on the runtime engine and score
//! them by what the run actually did.
//!
//! Static evaluation ([`crate::eval`]) asks whether a generated artifact
//! *reads* like the reference; this module asks whether it *runs* like it.
//! Each raw model response goes through five stages behind one shared
//! implementation, [`execute_artifact`]:
//!
//! 1. **extract** — [`wfspeak_codemodel::extract_code`] strips fences/prose;
//! 2. **parse** — [`wfspeak_systems::workflow_spec_from_config`] recovers a
//!    [`WorkflowSpec`](wfspeak_systems::WorkflowSpec) through the system's
//!    validating parser (schema diagnostics);
//! 3. **validate + normalize** — `WorkflowSpec::validate` checks the spec's
//!    structure (dangling edges, cycles, absurd bounds) and
//!    `WorkflowSpec::normalize` canonicalises it so downstream scoring is
//!    insensitive to task/edge declaration order;
//! 4. **run** — the [`wfspeak_runtime::Engine`] executes the spec under a
//!    bounded [`SandboxConfig`] (capped timesteps, elements, process counts
//!    and per-operation timeouts);
//! 5. **score** — the run's deterministic [`TraceSummary`] is compared
//!    against the *reference* artifact's run, yielding a runnability score
//!    and a trace-fidelity score.
//!
//! Every stage contributes typed [`Diagnostic`]s to the resulting
//! [`ExecutionScore`], so callers can see *why* an artifact stalled on a
//! given rung without parsing prose.
//!
//! Every surface funnels through [`execute_artifact`]: the standalone
//! [`ExecutionPipeline`] (callers bring their own responses; reference runs
//! are cached and shared), [`Benchmark::run_execution`] (whole experiment
//! grids sharded over [`crate::parallel::par_map`] with deterministic
//! aggregation) and the scoring service's `mode: "execute"` request — so
//! served scores are bit-identical to composing the stages by hand.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use wfspeak_codemodel::extract_code;
use wfspeak_corpus::prompts::{execution_prompt, PromptVariant};
use wfspeak_corpus::references::execution_reference;
use wfspeak_corpus::WorkflowSystemId;
use wfspeak_llm::{CompletionRequest, LlmClient, SamplingParams};
use wfspeak_runtime::{Engine, EngineConfig, TraceSummary};
use wfspeak_systems::{workflow_spec_from_config, Diagnostic, DiagnosticKind};

use crate::parallel::par_map;
use crate::runner::Benchmark;

/// Resource bounds for executing *untrusted generated* workflow specs.
///
/// Generated configurations routinely hallucinate structure; the sandbox
/// keeps every run small and bounded no matter what the artifact claims:
/// timesteps/elements are fixed by the sandbox (not the artifact), process
/// and task counts are capped before any thread is spawned, and each
/// send/receive carries a timeout so no run outlives
/// `timesteps × timeout_ms` even when the graph stalls.
#[derive(Debug, Clone, PartialEq)]
pub struct SandboxConfig {
    /// Timesteps each producer runs for.
    pub timesteps: usize,
    /// Elements per rank in generated arrays (kept small: the score uses
    /// message counts, not payload size).
    pub elements: usize,
    /// Bounded channel capacity per link.
    pub channel_capacity: usize,
    /// Per-operation send/receive timeout, in milliseconds.
    pub timeout_ms: u64,
    /// RNG seed for data generation (fixed for deterministic scoring).
    pub seed: u64,
    /// Refuse to run specs requesting more total processes than this (each
    /// process is a thread).
    pub max_total_procs: usize,
    /// Refuse to run specs declaring more tasks than this.
    pub max_tasks: usize,
}

impl Default for SandboxConfig {
    fn default() -> Self {
        SandboxConfig {
            timesteps: 3,
            elements: 16,
            channel_capacity: 8,
            timeout_ms: 2_000,
            seed: 42,
            max_total_procs: 64,
            max_tasks: 16,
        }
    }
}

impl SandboxConfig {
    /// The engine configuration this sandbox runs specs under.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            timesteps: self.timesteps,
            elements: self.elements,
            channel_capacity: self.channel_capacity,
            timeout_ms: self.timeout_ms,
            seed: self.seed,
            fail_task: None,
        }
    }
}

/// How far one generated artifact made it through the execution pipeline,
/// and how closely its run matched the reference run.
///
/// All fields are derived from deterministic counts (never wall-clock), so
/// scores are bit-identical across runs, surfaces and machines.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionScore {
    /// The artifact's structure parsed into a workflow spec at all.
    pub parsed: bool,
    /// The system's validating parser reported no schema errors.
    pub valid: bool,
    /// The spec passed structural validation (every consumed dataset has a
    /// producer, no cycles, sane bounds) and was normalized.  Only reachable
    /// when `valid` also holds: the rungs form a ladder.
    pub validated: bool,
    /// The engine accepted and ran the spec within the sandbox caps.
    pub ran: bool,
    /// The run completed: every task finished and every consumer saw every
    /// timestep of every dataset it subscribes to.
    pub completed: bool,
    /// Runnability on the paper's 0–100 scale: 20 points per stage
    /// (parsed, valid, validated, ran, completed).
    pub runnability: f64,
    /// Trace fidelity vs the reference run on a 0–100 scale
    /// ([`TraceSummary::fidelity`] × 100); 0 when the artifact never ran.
    pub trace_fidelity: f64,
    /// Tasks in the recovered spec (0 when parsing failed).
    pub tasks: usize,
    /// Dataset messages published during the run.
    pub published: usize,
    /// Dataset messages received during the run.
    pub received: usize,
    /// Tasks that failed during the run.
    pub failed_tasks: usize,
    /// Every typed finding the pipeline produced, in stage order: schema
    /// diagnostics from the parser, then structural diagnostics from
    /// `validate`, then a synthesized execute-stage diagnostic when the
    /// sandbox, engine or run itself stopped the pipeline.
    pub diagnostics: Vec<Diagnostic>,
    /// Why the pipeline stopped early, when it did (human-readable; the
    /// machine-readable form is in `diagnostics`).
    pub error: Option<String>,
}

impl ExecutionScore {
    fn stage_score(parsed: bool, valid: bool, validated: bool, ran: bool, completed: bool) -> f64 {
        20.0 * (usize::from(parsed)
            + usize::from(valid)
            + usize::from(validated)
            + usize::from(ran)
            + usize::from(completed)) as f64
    }

    fn not_parsed(error: String) -> ExecutionScore {
        ExecutionScore {
            parsed: false,
            valid: false,
            validated: false,
            ran: false,
            completed: false,
            runnability: 0.0,
            trace_fidelity: 0.0,
            tasks: 0,
            published: 0,
            received: 0,
            failed_tasks: 0,
            diagnostics: Vec::new(),
            error: Some(error),
        }
    }

    /// The wire code of the diagnostic that stopped this artifact, or
    /// `None` when the run completed.  The first error-severity finding
    /// wins; an incomplete run with no error findings reports
    /// `incomplete-run`, and an unparsed artifact with no findings at all
    /// falls back to `parse-error`.
    pub fn failure_kind(&self) -> Option<&'static str> {
        if self.completed {
            return None;
        }
        if let Some(d) = self.diagnostics.iter().find(|d| d.is_error()) {
            return Some(d.code());
        }
        Some(if self.ran {
            DiagnosticKind::IncompleteRun.code()
        } else {
            DiagnosticKind::ParseError.code()
        })
    }

    /// The `line` (and `column`, when the parser reported one) of the
    /// diagnostic behind [`ExecutionScore::failure_kind`], or `None` when
    /// the run completed or the stopping diagnostic carries no source
    /// position (e.g. a sandbox cap).
    pub fn failure_position(&self) -> Option<(usize, Option<usize>)> {
        if self.completed {
            return None;
        }
        let d = self.diagnostics.iter().find(|d| d.is_error())?;
        d.line.map(|line| (line, d.column))
    }
}

/// Run one raw model response through the full execution pipeline against a
/// prepared reference-run summary.
///
/// This is the *only* pipeline implementation: the standalone
/// [`ExecutionPipeline`], the grid executor ([`Benchmark::run_execution`])
/// and the scoring service's `execute` mode all call it, so their scores
/// are bit-identical to composing `extract_code` +
/// `workflow_spec_from_config` + `Engine::run` + `TraceSummary::fidelity`
/// by hand (pinned by the workspace integration tests).
pub fn execute_artifact(
    sandbox: &SandboxConfig,
    system: WorkflowSystemId,
    response: &str,
    reference: &TraceSummary,
) -> ExecutionScore {
    let code = extract_code(response);
    let (spec, report) = workflow_spec_from_config(system, &code);
    let mut diagnostics = report.diagnostics.clone();
    let Some(spec) = spec else {
        let reason = diagnostics
            .first()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "artifact did not parse".to_owned());
        return ExecutionScore {
            diagnostics,
            ..ExecutionScore::not_parsed(reason)
        };
    };
    let tasks = spec.tasks.len();
    let valid = report.is_valid();
    let structural = spec.validate();
    let structurally_valid = !structural.iter().any(|d| d.is_error());
    diagnostics.extend(structural);
    // The rungs form a ladder: a spec only counts as structurally validated
    // when it also passed the system's schema.
    let validated = valid && structurally_valid;
    if !validated {
        let reason = diagnostics
            .iter()
            .find(|d| d.is_error())
            .map(|d| d.to_string())
            .unwrap_or_else(|| "validation failed".to_owned());
        return ExecutionScore {
            parsed: true,
            valid,
            runnability: ExecutionScore::stage_score(true, valid, false, false, false),
            tasks,
            diagnostics,
            error: Some(reason),
            ..ExecutionScore::not_parsed(String::new())
        };
    }
    // Canonicalise before running so scoring is insensitive to the order
    // the artifact happened to declare its tasks and edges in.
    let spec = spec.normalized();
    if tasks > sandbox.max_tasks || spec.total_procs() > sandbox.max_total_procs {
        let message = format!(
            "spec exceeds sandbox caps ({} tasks / {} procs; caps {} / {})",
            tasks,
            spec.total_procs(),
            sandbox.max_tasks,
            sandbox.max_total_procs
        );
        diagnostics.push(Diagnostic::error(DiagnosticKind::SandboxCap, &message));
        return ExecutionScore {
            parsed: true,
            valid: true,
            validated: true,
            runnability: ExecutionScore::stage_score(true, true, true, false, false),
            tasks,
            diagnostics,
            error: Some(message),
            ..ExecutionScore::not_parsed(String::new())
        };
    }
    match Engine::new(sandbox.engine_config()).run(&spec) {
        Ok(outcome) => {
            let summary = outcome.summary();
            if !outcome.completed {
                diagnostics.push(Diagnostic::warning(
                    DiagnosticKind::IncompleteRun,
                    format!(
                        "run did not complete: {} task(s) failed",
                        summary.total_failed()
                    ),
                ));
            }
            ExecutionScore {
                parsed: true,
                valid: true,
                validated: true,
                ran: true,
                completed: outcome.completed,
                runnability: ExecutionScore::stage_score(true, true, true, true, outcome.completed),
                trace_fidelity: 100.0 * summary.fidelity(reference),
                tasks,
                published: summary.total_published(),
                received: summary.total_received(),
                failed_tasks: summary.total_failed(),
                diagnostics,
                error: None,
            }
        }
        Err(e) => {
            let message = e.to_string();
            diagnostics.push(Diagnostic::error(DiagnosticKind::EngineError, &message));
            ExecutionScore {
                parsed: true,
                valid: true,
                validated: true,
                runnability: ExecutionScore::stage_score(true, true, true, false, false),
                tasks,
                diagnostics,
                error: Some(message),
                ..ExecutionScore::not_parsed(String::new())
            }
        }
    }
}

/// A standalone execution pipeline: a sandbox plus a cache of reference-run
/// summaries, for executing caller-supplied responses outside a
/// [`Benchmark`] grid (the scoring service's `execute` mode runs on one
/// shared instance across all connections).
#[derive(Debug)]
pub struct ExecutionPipeline {
    sandbox: SandboxConfig,
    references: Mutex<HashMap<String, Arc<TraceSummary>>>,
    max_cached_references: usize,
}

impl Default for ExecutionPipeline {
    fn default() -> Self {
        ExecutionPipeline {
            sandbox: SandboxConfig::default(),
            references: Mutex::new(HashMap::new()),
            max_cached_references: usize::MAX,
        }
    }
}

impl ExecutionPipeline {
    /// A pipeline with the default sandbox and an empty reference cache.
    pub fn new() -> ExecutionPipeline {
        ExecutionPipeline::default()
    }

    /// A pipeline with an explicit sandbox.
    pub fn with_sandbox(sandbox: SandboxConfig) -> ExecutionPipeline {
        ExecutionPipeline {
            sandbox,
            ..ExecutionPipeline::default()
        }
    }

    /// Never retain more than `max_entries` reference runs: beyond the cap,
    /// unseen references are still resolved and scored but not cached.
    /// Servers accepting arbitrary client-supplied `reference_text` use
    /// this to bound memory, like the metrics cache's
    /// [`get_or_prepare_bounded`](crate::ReferenceCache::get_or_prepare_bounded).
    pub fn with_cache_cap(mut self, max_entries: usize) -> ExecutionPipeline {
        self.max_cached_references = max_entries;
        self
    }

    /// The sandbox every run uses.
    pub fn sandbox(&self) -> &SandboxConfig {
        &self.sandbox
    }

    /// Number of distinct reference runs cached so far.
    pub fn cached_references(&self) -> usize {
        self.references
            .lock()
            .expect("reference cache poisoned")
            .len()
    }

    /// Fetch (or produce on first use) the reference-run summary for a
    /// reference artifact: parse it, require it to be fully valid, run it
    /// under the sandbox and summarise the trace.
    ///
    /// Fails when the reference itself does not parse, validate or run —
    /// the caller supplied something that is not an executable ground truth.
    pub fn reference_summary(
        &self,
        system: WorkflowSystemId,
        reference: &str,
    ) -> Result<Arc<TraceSummary>, String> {
        let key = format!("{}\u{1f}{reference}", system.name());
        if let Some(summary) = self
            .references
            .lock()
            .expect("reference cache poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(summary));
        }
        let (spec, report) = workflow_spec_from_config(system, reference);
        let spec = spec.filter(|_| report.is_valid()).ok_or_else(|| {
            format!(
                "reference is not a valid {} configuration: {}",
                system.name(),
                report
                    .diagnostics
                    .first()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "unparseable".to_owned())
            )
        })?;
        if let Some(d) = spec.validate().iter().find(|d| d.is_error()) {
            return Err(format!("reference spec is not executable: {d}"));
        }
        let spec = spec.normalized();
        if spec.tasks.len() > self.sandbox.max_tasks
            || spec.total_procs() > self.sandbox.max_total_procs
        {
            return Err("reference spec exceeds the sandbox caps".to_owned());
        }
        let outcome = Engine::new(self.sandbox.engine_config())
            .run(&spec)
            .map_err(|e| format!("reference run refused: {e}"))?;
        let summary = Arc::new(outcome.summary());
        let mut references = self.references.lock().expect("reference cache poisoned");
        if references.len() < self.max_cached_references {
            references.insert(key, Arc::clone(&summary));
        }
        Ok(summary)
    }

    /// Execute one response against a reference artifact for `system`.
    pub fn execute(
        &self,
        system: WorkflowSystemId,
        reference: &str,
        response: &str,
    ) -> Result<ExecutionScore, String> {
        let summary = self.reference_summary(system, reference)?;
        Ok(execute_artifact(&self.sandbox, system, response, &summary))
    }

    /// Execute a batch of responses against one reference, in order.
    pub fn execute_batch(
        &self,
        system: WorkflowSystemId,
        reference: &str,
        responses: &[String],
    ) -> Result<Vec<ExecutionScore>, String> {
        let summary = self.reference_summary(system, reference)?;
        Ok(responses
            .iter()
            .map(|response| execute_artifact(&self.sandbox, system, response, &summary))
            .collect())
    }
}

/// One fully executed grid cell: every trial of one `(system, model)` pair.
#[derive(Debug, Clone)]
pub struct ExecutedCell {
    /// System row label.
    pub row: String,
    /// Model display name.
    pub model: String,
    /// Per-trial execution scores, in seed order.
    pub trials: Vec<ExecutionScore>,
}

impl ExecutedCell {
    fn mean(&self, f: impl Fn(&ExecutionScore) -> f64) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(f).sum::<f64>() / self.trials.len() as f64
    }

    /// Mean runnability over the cell's trials.
    pub fn mean_runnability(&self) -> f64 {
        self.mean(|s| s.runnability)
    }

    /// Mean trace fidelity over the cell's trials.
    pub fn mean_fidelity(&self) -> f64 {
        self.mean(|s| s.trace_fidelity)
    }

    /// Trials that ran to completion.
    pub fn completed_trials(&self) -> usize {
        self.trials.iter().filter(|s| s.completed).count()
    }

    /// Trials whose artifact did not even parse.
    pub fn unparsed_trials(&self) -> usize {
        self.trials.iter().filter(|s| !s.parsed).count()
    }

    /// Per-`ErrorKind` categories of the cell's parse failures: one label
    /// per distinct `(kind, position)` among trials whose artifact did not
    /// parse — `tab-indent@2:1` when the parser reported an exact
    /// `line:column`, the bare kind otherwise — with counts, most frequent
    /// first (ties broken by label).  Empty when every trial parsed.
    pub fn parse_failure_categories(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for trial in &self.trials {
            if trial.parsed {
                continue;
            }
            let Some(kind) = trial.failure_kind() else {
                continue;
            };
            let label = match trial.failure_position() {
                Some((line, Some(column))) => format!("{kind}@{line}:{column}"),
                Some((line, None)) => format!("{kind}@{line}"),
                None => kind.to_owned(),
            };
            match counts.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => counts.push((label, 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Counts of failure kinds across the cell's trials, most frequent
    /// first (ties broken by code), using each trial's
    /// [`ExecutionScore::failure_kind`].  Empty when every trial completed.
    pub fn failure_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for trial in &self.trials {
            if let Some(kind) = trial.failure_kind() {
                *counts.entry(kind).or_insert(0) += 1;
            }
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }
}

/// A whole configuration-experiment grid taken through dynamic execution.
#[derive(Debug, Clone)]
pub struct ExecutionGrid {
    /// Cells in declared order: system-major, model-minor.
    pub cells: Vec<ExecutedCell>,
}

impl ExecutionGrid {
    /// Look up one cell by row and model label.
    pub fn cell(&self, row: &str, model: &str) -> Option<&ExecutedCell> {
        self.cells.iter().find(|c| c.row == row && c.model == model)
    }

    /// Total responses executed (cells × trials).
    pub fn total_executions(&self) -> usize {
        self.cells.iter().map(|c| c.trials.len()).sum()
    }

    /// Responses that ran to completion across the whole grid.
    pub fn completed_executions(&self) -> usize {
        self.cells.iter().map(|c| c.completed_trials()).sum()
    }

    fn grid_mean(&self, f: impl Fn(&ExecutionScore) -> f64) -> f64 {
        let n = self.total_executions();
        if n == 0 {
            return 0.0;
        }
        self.cells
            .iter()
            .flat_map(|c| &c.trials)
            .map(&f)
            .sum::<f64>()
            / n as f64
    }

    /// Mean runnability over every execution in the grid.
    pub fn mean_runnability(&self) -> f64 {
        self.grid_mean(|s| s.runnability)
    }

    /// Mean trace fidelity over every execution in the grid.
    pub fn mean_fidelity(&self) -> f64 {
        self.grid_mean(|s| s.trace_fidelity)
    }

    /// Render a fixed-width summary table: one line per cell with
    /// runnability, trace fidelity and completion counts, plus a grid-level
    /// footer.  The final column breaks parse failures down into
    /// per-`ErrorKind` categories with the offending `line:column`
    /// ([`ExecutedCell::parse_failure_categories`]) instead of a flat
    /// unparsed count; cells whose trials all parsed show `-`.
    pub fn render_summary(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        out.push_str(&format!(
            "{:<10} {:<16} {:>9} {:>9} {:>10}  {}\n",
            "system", "model", "runnable", "fidelity", "completed", "parse failure"
        ));
        for cell in &self.cells {
            let categories = cell.parse_failure_categories();
            let breakdown = if categories.is_empty() {
                "-".to_owned()
            } else {
                categories
                    .iter()
                    .map(|(label, n)| {
                        if *n == 1 {
                            label.clone()
                        } else {
                            format!("{label}×{n}")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "{:<10} {:<16} {:>9.2} {:>9.2} {:>7}/{:<2}  {}\n",
                cell.row,
                cell.model,
                cell.mean_runnability(),
                cell.mean_fidelity(),
                cell.completed_trials(),
                cell.trials.len(),
                breakdown,
            ));
        }
        out.push_str(&format!(
            "overall: {} executions, mean runnability {:.2}, mean fidelity {:.2}, {} ran to completion\n",
            self.total_executions(),
            self.mean_runnability(),
            self.mean_fidelity(),
            self.completed_executions(),
        ));
        out
    }

    /// Render the per-cell diagnostic breakdown: for every `(system,
    /// model)` cell, the failure kinds that stopped its trials with counts,
    /// most frequent first.  Cells whose trials all completed say so.
    pub fn render_diagnostics(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        for cell in &self.cells {
            let counts = cell.failure_counts();
            let breakdown = if counts.is_empty() {
                "all trials completed".to_owned()
            } else {
                counts
                    .iter()
                    .map(|(kind, n)| format!("{kind}×{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "{:<10} {:<16} {}\n",
                cell.row, cell.model, breakdown
            ));
        }
        out
    }
}

/// One grid cell's execution work.
struct ExecCellJob<'a> {
    row: String,
    model: String,
    client: &'a dyn LlmClient,
    prompt: String,
    system: WorkflowSystemId,
    reference: Arc<TraceSummary>,
}

impl Benchmark {
    /// Take the full five-system grid through dynamic execution: every
    /// `(system × model × trial)` response is parsed, run on the runtime
    /// engine under the benchmark's sandbox and scored against the
    /// reference artifact's run.
    ///
    /// The configuration systems (Wilkins, ADIOS2, Henson) execute the
    /// responses to their configuration prompt; Parsl and PyCOMPSs execute
    /// the responses to their annotation prompt, since their workflow
    /// structure lives in annotated task code rather than a configuration
    /// file (see [`execution_prompt`] / [`execution_reference`]).  Cells
    /// are executed in parallel on the worker pool
    /// ([`crate::parallel::par_map`]) while the result preserves declared
    /// order (system-major, model-minor, trials in seed order), and each
    /// system's reference run happens once through the benchmark's shared
    /// [`ExecutionPipeline`].
    pub fn run_execution(&self, variant: PromptVariant) -> ExecutionGrid {
        let mut jobs = Vec::new();
        for system in WorkflowSystemId::execution_systems() {
            let reference = execution_reference(system);
            let summary = self
                .executions
                .reference_summary(system, reference)
                .expect("reference artifacts are executable");
            let prompt = execution_prompt(system, variant);
            for client in &self.clients {
                jobs.push(ExecCellJob {
                    row: system.name().to_owned(),
                    model: client.model().name().to_owned(),
                    client: client.as_ref(),
                    prompt: prompt.clone(),
                    system,
                    reference: Arc::clone(&summary),
                });
            }
        }
        let executed = par_map(&jobs, |job| {
            self.config
                .trial_seeds()
                .into_iter()
                .map(|seed| {
                    let params = SamplingParams {
                        temperature: self.config.temperature,
                        top_p: self.config.top_p,
                        seed,
                    };
                    let response = job
                        .client
                        .complete(&CompletionRequest::new(job.prompt.clone(), params));
                    execute_artifact(
                        self.executions.sandbox(),
                        job.system,
                        &response.text,
                        &job.reference,
                    )
                })
                .collect::<Vec<_>>()
        });
        ExecutionGrid {
            cells: jobs
                .into_iter()
                .zip(executed)
                .map(|(job, trials)| ExecutedCell {
                    row: job.row,
                    model: job.model,
                    trials,
                })
                .collect(),
        }
    }

    /// The benchmark's shared execution pipeline (sandbox + reference-run
    /// cache).
    pub fn execution_pipeline(&self) -> &ExecutionPipeline {
        &self.executions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BenchmarkConfig;
    use wfspeak_corpus::references::configs::WILKINS_3NODE;
    use wfspeak_corpus::references::configuration_reference;

    fn quick_benchmark() -> Benchmark {
        Benchmark::with_simulated_models(BenchmarkConfig {
            trials: 2,
            ..BenchmarkConfig::default()
        })
    }

    #[test]
    fn reference_artifacts_execute_perfectly() {
        let pipeline = ExecutionPipeline::new();
        for system in WorkflowSystemId::execution_systems() {
            let reference = execution_reference(system);
            let score = pipeline.execute(system, reference, reference).unwrap();
            assert!(
                score.parsed && score.valid && score.validated && score.ran && score.completed,
                "{system}"
            );
            assert_eq!(score.runnability, 100.0, "{system}");
            assert_eq!(score.trace_fidelity, 100.0, "{system}");
            assert!(score.error.is_none());
            assert_eq!(score.failure_kind(), None, "{system}");
            assert!(
                score.diagnostics.iter().all(|d| !d.is_error()),
                "{system}: {:?}",
                score.diagnostics
            );
            // Configuration references describe the paper's 3-node workflow
            // (two datasets streamed producer → consumers); the Python
            // annotation references are a solo producer publishing one
            // dataset into the void.
            let datasets = if system.uses_python_tasks() { 1 } else { 2 };
            let consumed = if system.uses_python_tasks() { 0 } else { 2 };
            assert_eq!(
                score.published,
                datasets * pipeline.sandbox().timesteps,
                "{system}"
            );
            assert_eq!(
                score.received,
                consumed * pipeline.sandbox().timesteps,
                "{system}"
            );
            assert_eq!(score.failed_tasks, 0);
        }
    }

    #[test]
    fn unparseable_artifact_scores_zero() {
        let pipeline = ExecutionPipeline::new();
        let score = pipeline
            .execute(
                WorkflowSystemId::Wilkins,
                WILKINS_3NODE,
                "I cannot produce that configuration.",
            )
            .unwrap();
        assert!(!score.parsed);
        assert_eq!(score.runnability, 0.0);
        assert_eq!(score.trace_fidelity, 0.0);
        assert!(score.error.is_some());
        assert!(score.failure_kind().is_some());
    }

    #[test]
    fn parsed_but_invalid_artifact_gets_partial_credit() {
        let pipeline = ExecutionPipeline::new();
        // Parses (structure recovered) but carries an unknown field.
        let hallucinated = "tasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n";
        let score = pipeline
            .execute(WorkflowSystemId::Wilkins, WILKINS_3NODE, hallucinated)
            .unwrap();
        assert!(score.parsed && !score.valid && !score.validated && !score.ran);
        assert_eq!(score.runnability, 20.0);
        assert_eq!(score.tasks, 1);
        assert_eq!(score.failure_kind(), Some("unknown-field"));
        assert!(score.error.unwrap().contains("command"));
    }

    #[test]
    fn valid_but_incomplete_dataflow_runs_with_reduced_fidelity() {
        let pipeline = ExecutionPipeline::new();
        // A lone producer: valid, runs, completes, but publishes into the
        // void — no received messages to match the reference's.
        let solo = "tasks:\n  - func: producer\n    nprocs: 1\n    outports:\n      - filename: outfile.h5\n        dsets:\n          - name: /group1/grid\n            file: 0\n            memory: 1\n";
        let score = pipeline
            .execute(WorkflowSystemId::Wilkins, WILKINS_3NODE, solo)
            .unwrap();
        assert!(score.completed);
        assert_eq!(score.runnability, 100.0);
        assert!(score.trace_fidelity > 0.0 && score.trace_fidelity < 100.0);
        assert_eq!(score.received, 0);
        // Publishing into the void is worth a warning but not a failure.
        assert!(score
            .diagnostics
            .iter()
            .any(|d| d.code() == "unconsumed-produce" && !d.is_error()));
        assert_eq!(score.failure_kind(), None);
    }

    #[test]
    fn sandbox_caps_refuse_oversized_specs() {
        let pipeline = ExecutionPipeline::new();
        let greedy = "tasks:\n  - func: producer\n    nprocs: 5000\n";
        let score = pipeline
            .execute(WorkflowSystemId::Wilkins, WILKINS_3NODE, greedy)
            .unwrap();
        assert!(score.parsed && score.valid && score.validated && !score.ran);
        assert_eq!(score.runnability, 60.0);
        assert_eq!(score.failure_kind(), Some("sandbox-cap"));
        assert!(score.error.unwrap().contains("sandbox caps"));
    }

    #[test]
    fn reference_summaries_are_cached_per_system_and_text() {
        let pipeline = ExecutionPipeline::new();
        let reference = configuration_reference(WorkflowSystemId::Wilkins).unwrap();
        pipeline
            .execute_batch(
                WorkflowSystemId::Wilkins,
                reference,
                &["a".into(), "b".into()],
            )
            .unwrap();
        assert_eq!(pipeline.cached_references(), 1);
        pipeline
            .execute(WorkflowSystemId::Wilkins, reference, "c")
            .unwrap();
        assert_eq!(pipeline.cached_references(), 1);
    }

    #[test]
    fn reference_run_cache_respects_its_cap() {
        let pipeline = ExecutionPipeline::new().with_cache_cap(1);
        let reference_a = configuration_reference(WorkflowSystemId::Wilkins).unwrap();
        let reference_b = configuration_reference(WorkflowSystemId::Henson).unwrap();
        pipeline
            .execute(WorkflowSystemId::Wilkins, reference_a, "x")
            .unwrap();
        assert_eq!(pipeline.cached_references(), 1);
        // A second distinct reference is still resolved and scored, but the
        // cache does not grow past the cap.
        let score = pipeline
            .execute(WorkflowSystemId::Henson, reference_b, reference_b)
            .unwrap();
        assert_eq!(score.runnability, 100.0);
        assert_eq!(pipeline.cached_references(), 1);
        // The retained entry keeps serving.
        pipeline
            .execute(WorkflowSystemId::Wilkins, reference_a, "y")
            .unwrap();
        assert_eq!(pipeline.cached_references(), 1);
    }

    #[test]
    fn bad_reference_text_is_an_error_not_a_score() {
        let pipeline = ExecutionPipeline::new();
        let err = pipeline
            .execute(WorkflowSystemId::Wilkins, "not yaml at all {", "x")
            .unwrap_err();
        assert!(err.contains("reference"), "{err}");
    }

    #[test]
    fn execution_grid_covers_the_five_system_grid() {
        let grid = quick_benchmark().run_execution(PromptVariant::Original);
        assert_eq!(grid.cells.len(), 5 * 4, "5 systems × 4 models");
        assert_eq!(grid.total_executions(), 5 * 4 * 2);
        assert!(grid.mean_runnability() > 0.0);
        // Simulated models include exact-tier outputs, so some runs complete.
        assert!(grid.completed_executions() > 0);
        // And degraded tiers guarantee some do not even parse.
        assert!(grid.mean_runnability() < 100.0);
    }

    #[test]
    fn execution_grid_is_deterministic() {
        let a = quick_benchmark().run_execution(PromptVariant::Original);
        let b = quick_benchmark().run_execution(PromptVariant::Original);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.row, cb.row);
            assert_eq!(ca.model, cb.model);
            assert_eq!(ca.trials, cb.trials);
        }
    }

    #[test]
    fn summary_renders_rows_models_and_totals() {
        let grid = quick_benchmark().run_execution(PromptVariant::Original);
        let summary = grid.render_summary("Execution: configuration");
        assert!(summary.starts_with("Execution: configuration"));
        assert!(summary.contains("Wilkins"));
        assert!(summary.contains("Parsl"));
        assert!(summary.contains("PyCOMPSs"));
        assert!(summary.contains("o3"));
        assert!(summary.contains("parse failure"));
        assert!(summary.contains("overall:"));
    }

    #[test]
    fn parse_failures_carry_per_kind_positions() {
        let pipeline = ExecutionPipeline::new();
        let score = pipeline
            .execute(
                WorkflowSystemId::Wilkins,
                WILKINS_3NODE,
                "tasks:\n\t- func: p\n",
            )
            .unwrap();
        assert!(!score.parsed);
        assert_eq!(score.failure_kind(), Some("tab-indent"));
        assert_eq!(score.failure_position(), Some((2, Some(1))));
    }

    #[test]
    fn parse_failure_categories_group_kind_and_position() {
        let pipeline = ExecutionPipeline::new();
        let artifacts = [
            "tasks:\n\t- func: p\n",
            "tasks:\n\t- func: p\n",
            "tasks: [1, 2\n",
        ];
        let trials: Vec<ExecutionScore> = artifacts
            .iter()
            .map(|a| {
                pipeline
                    .execute(WorkflowSystemId::Wilkins, WILKINS_3NODE, a)
                    .unwrap()
            })
            .collect();
        let cell = ExecutedCell {
            row: "Wilkins".to_owned(),
            model: "test".to_owned(),
            trials,
        };
        assert_eq!(cell.unparsed_trials(), 3);
        assert_eq!(
            cell.parse_failure_categories(),
            vec![
                ("tab-indent@2:1".to_owned(), 2),
                ("unterminated-flow@1:8".to_owned(), 1),
            ]
        );
        // Parsed-but-failing trials never land in the parse-failure column.
        let valid_but_capped = pipeline
            .execute(
                WorkflowSystemId::Wilkins,
                WILKINS_3NODE,
                "tasks:\n  - func: producer\n    nprocs: 5000\n",
            )
            .unwrap();
        assert!(valid_but_capped.parsed);
        let cell = ExecutedCell {
            row: "Wilkins".to_owned(),
            model: "test".to_owned(),
            trials: vec![valid_but_capped],
        };
        assert!(cell.parse_failure_categories().is_empty());
    }

    #[test]
    fn diagnostics_breakdown_names_failure_kinds() {
        let grid = quick_benchmark().run_execution(PromptVariant::Original);
        let breakdown = grid.render_diagnostics("Diagnostics: configuration");
        assert!(breakdown.starts_with("Diagnostics: configuration"));
        assert!(breakdown.contains("Wilkins"));
        // Degraded simulated tiers guarantee at least one failing cell, so
        // the breakdown names at least one failure kind with a count.
        assert!(breakdown.contains('×'), "{breakdown}");
    }

    #[test]
    fn failure_kinds_distinguish_previously_undifferentiated_failures() {
        // Three artifacts that all scored short of completion now carry
        // three distinct machine-readable kinds.
        let pipeline = ExecutionPipeline::new();
        let cases = [
            ("not a config at all {", "schema"),
            (
                "tasks:\n  - func: producer\n    nprocs: 2\n    command: ./p\n",
                "unknown-field",
            ),
            (
                "tasks:\n  - func: producer\n    nprocs: 5000\n",
                "sandbox-cap",
            ),
        ];
        let mut kinds = std::collections::HashSet::new();
        for (artifact, expected) in cases {
            let score = pipeline
                .execute(WorkflowSystemId::Wilkins, WILKINS_3NODE, artifact)
                .unwrap();
            let kind = score.failure_kind().expect("artifact should fail");
            assert_eq!(kind, expected, "{artifact}");
            kinds.insert(kind);
        }
        assert_eq!(kinds.len(), 3);
    }
}
