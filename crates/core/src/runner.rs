//! The benchmark runner: prompt assembly, model querying, response
//! post-processing, scoring and aggregation.
//!
//! Scoring is the hot path of the reproduction, so the runner leans on two
//! mechanisms from `wfspeak-metrics`:
//!
//! * a [`ReferenceCache`] that prepares (tokenises, interns and counts) each
//!   ground-truth reference **once** per benchmark and shares the prepared
//!   data across every cell, trial and prompt variant scored against it;
//! * a parallel grid: the `(system row × model)` cells of an experiment are
//!   scored on scoped threads ([`crate::parallel::par_map`]) while
//!   aggregation into [`ExperimentResult`] happens afterwards in declared
//!   row/column/trial order, so results are deterministic regardless of
//!   scheduling.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use wfspeak_codemodel::extract_code;
use wfspeak_corpus::prompts::{
    annotation_prompt, configuration_prompt, translation_prompt, PromptVariant,
};
use wfspeak_corpus::references::{
    annotation_reference, configuration_reference, translation_reference,
};
use wfspeak_corpus::{fewshot, translation_pair_label, translation_pairs, WorkflowSystemId};
use wfspeak_llm::{CompletionRequest, LlmClient, SamplingParams, SimulatedLlm};
use wfspeak_metrics::{BleuScorer, CacheStats, ChrfScorer, PreparedReference, Scorer};

use crate::config::BenchmarkConfig;
use crate::exec::ExecutionPipeline;
use crate::experiments::{ExperimentKind, FewShotComparison, PromptSensitivity};
use crate::parallel::par_map;
use crate::result::ExperimentResult;

/// A reference prepared for both metrics.
#[derive(Debug)]
pub struct PreparedPair {
    /// BLEU-prepared reference (interned tokens, packed `u64` counts).
    pub bleu: PreparedReference,
    /// ChrF-prepared reference (packed `u128` char counts).
    pub chrf: PreparedReference,
}

/// Number of independent lock shards in a [`ReferenceCache`]. A power of
/// two so the shard index is a mask of the key hash.
const CACHE_SHARDS: usize = 16;

/// Caches [`PreparedPair`]s keyed by reference text.
///
/// The paper's experiments reuse a handful of ground-truth artifacts across
/// thousands of `(model × system × variant × trial)` scorings; preparing each
/// reference once and sharing the result is most of the scoring speedup. The
/// cache is shared across experiments (the prompt-sensitivity study re-runs
/// every experiment five times over the same references).
///
/// The map is split into 16 independently locked shards,
/// selected by an FNV-1a hash of the reference text, so the scoring server's
/// worker pool does not serialise every lookup on one global mutex. The
/// aggregate accounting is unchanged by sharding: `hits`/`misses` are global
/// counters, [`stats`](ReferenceCache::stats) reports exactly what the
/// single-map cache reported, and the bounded variant caps the **total**
/// entry count across all shards.
#[derive(Debug)]
pub struct ReferenceCache {
    shards: Vec<Mutex<HashMap<String, Arc<PreparedPair>>>>,
    /// Total entries across every shard; insertions reserve a slot through
    /// a compare-and-swap so the bound is exact even under contention.
    total_entries: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ReferenceCache {
    fn default() -> Self {
        ReferenceCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            total_entries: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// FNV-1a over the reference text: stable, dependency-free, and spreads the
/// handful-of-references workloads evenly enough across shards.
fn shard_hash(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ReferenceCache {
    fn shard(&self, reference: &str) -> &Mutex<HashMap<String, Arc<PreparedPair>>> {
        &self.shards[(shard_hash(reference) as usize) & (CACHE_SHARDS - 1)]
    }

    /// Fetch the prepared pair for `reference`, preparing it on first use.
    pub fn get_or_prepare(
        &self,
        bleu: &BleuScorer,
        chrf: &ChrfScorer,
        reference: &str,
    ) -> Arc<PreparedPair> {
        self.get_or_prepare_bounded(bleu, chrf, reference, usize::MAX)
    }

    /// Like [`get_or_prepare`](ReferenceCache::get_or_prepare), but never
    /// grows the cache beyond `max_entries` **total entries across all
    /// shards**: once full, unseen references are prepared and returned
    /// without being cached (and keep counting as misses). Servers
    /// accepting arbitrary client-supplied reference text use this to bound
    /// memory.
    ///
    /// The expensive preparation runs outside any lock, so concurrent
    /// misses — even on references that hash to the same shard — prepare in
    /// parallel. Two threads racing on the *same* reference may both
    /// prepare it; the loser adopts the winner's entry (and counts as a
    /// hit), so `stats().misses` equals the number of distinct references
    /// inserted.
    pub fn get_or_prepare_bounded(
        &self,
        bleu: &BleuScorer,
        chrf: &ChrfScorer,
        reference: &str,
        max_entries: usize,
    ) -> Arc<PreparedPair> {
        let shard = self.shard(reference);
        {
            let entries = shard.lock();
            if let Some(pair) = entries.get(reference) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(pair);
            }
        }
        let pair = Arc::new(PreparedPair {
            bleu: bleu.prepare(reference),
            chrf: chrf.prepare(reference),
        });
        let mut entries = shard.lock();
        if let Some(existing) = entries.get(reference) {
            // Lost a race with another preparer; adopt its entry.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(existing);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Reserve a global slot before inserting so the cap stays exact
        // across shards even when insertions race.
        let reserved = self
            .total_entries
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |total| {
                (total < max_entries).then_some(total + 1)
            })
            .is_ok();
        if reserved {
            entries.insert(reference.to_owned(), Arc::clone(&pair));
        }
        pair
    }

    /// Number of distinct references prepared so far.
    pub fn len(&self) -> usize {
        self.total_entries.load(Ordering::SeqCst)
    }

    /// True when nothing has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters accumulated over every
    /// [`get_or_prepare`](ReferenceCache::get_or_prepare) lookup.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// One grid cell's work: a client queried with one prompt, scored against
/// one prepared reference over all trials.
struct CellJob<'a> {
    row: String,
    model: String,
    client: &'a dyn LlmClient,
    prompt: String,
    prepared: Arc<PreparedPair>,
}

/// The benchmark: a set of models plus the run configuration.
pub struct Benchmark {
    pub(crate) clients: Vec<Box<dyn LlmClient>>,
    pub(crate) config: BenchmarkConfig,
    pub(crate) bleu: BleuScorer,
    pub(crate) chrf: ChrfScorer,
    pub(crate) references: ReferenceCache,
    pub(crate) executions: ExecutionPipeline,
}

impl Benchmark {
    /// Build a benchmark over an explicit set of models.
    pub fn new(clients: Vec<Box<dyn LlmClient>>, config: BenchmarkConfig) -> Self {
        Benchmark {
            clients,
            config,
            bleu: BleuScorer::default(),
            chrf: ChrfScorer::default(),
            references: ReferenceCache::default(),
            executions: ExecutionPipeline::default(),
        }
    }

    /// Build a benchmark over the paper's four models, simulated.
    pub fn with_simulated_models(config: BenchmarkConfig) -> Self {
        let clients: Vec<Box<dyn LlmClient>> = SimulatedLlm::all()
            .into_iter()
            .map(|m| Box::new(m) as Box<dyn LlmClient>)
            .collect();
        Benchmark::new(clients, config)
    }

    /// The run configuration.
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    /// The shared prepared-reference cache.
    pub fn reference_cache(&self) -> &ReferenceCache {
        &self.references
    }

    /// Model display names in column order.
    pub fn model_names(&self) -> Vec<String> {
        self.clients
            .iter()
            .map(|c| c.model().name().to_owned())
            .collect()
    }

    /// Total scored cells per full experiment grid pass (rows × models).
    pub fn grid_cells(&self, kind: ExperimentKind) -> usize {
        kind.row_labels().len() * self.clients.len()
    }

    /// The configuration-artifact corpus the parse benchmark measures:
    /// every generated configuration response — code-extracted, exactly as
    /// the execution pipeline sees it — for the three configuration systems
    /// × all models × all trials × the first three prompt variants, in
    /// deterministic variant/system/model/trial order.  With the paper
    /// defaults that is 3 × 3 × 4 × 5 = 180 artifacts: mostly well-formed
    /// Wilkins/ADIOS2 YAML, plus Henson scripts and degraded-tier output
    /// that exercise the parser's failure categories.
    pub fn configuration_corpus(&self) -> Vec<String> {
        let mut corpus = Vec::new();
        for variant in &PromptVariant::ALL[..3] {
            for system in WorkflowSystemId::configuration_systems() {
                let prompt = configuration_prompt(system, *variant);
                for client in &self.clients {
                    for seed in self.config.trial_seeds() {
                        let params = SamplingParams {
                            temperature: self.config.temperature,
                            top_p: self.config.top_p,
                            seed,
                        };
                        let response =
                            client.complete(&CompletionRequest::new(prompt.clone(), params));
                        corpus.push(extract_code(&response.text));
                    }
                }
            }
        }
        corpus
    }

    /// Run one `(prompt, reference)` cell for one client over all trials,
    /// returning `(bleu, chrf)` per trial in seed order.  The reference
    /// arrives pre-tokenised and pre-counted as a [`PreparedPair`], so each
    /// trial only pays for scoring its own hypothesis.
    fn run_cell(
        &self,
        client: &dyn LlmClient,
        prompt: &str,
        prepared: &PreparedPair,
    ) -> Vec<(f64, f64)> {
        self.config
            .trial_seeds()
            .into_iter()
            .map(|seed| {
                let params = SamplingParams {
                    temperature: self.config.temperature,
                    top_p: self.config.top_p,
                    seed,
                };
                let response = client.complete(&CompletionRequest::new(prompt.to_owned(), params));
                let code = extract_code(&response.text);
                let bleu = self.bleu.score_prepared(&code, &prepared.bleu);
                let chrf = self.chrf.score_prepared(&code, &prepared.chrf);
                (bleu, chrf)
            })
            .collect()
    }

    /// Score a list of cell jobs in parallel and aggregate deterministically:
    /// jobs are scored on scoped threads, but pushed into the result in job
    /// order (system-major, model-minor, trials in seed order) — exactly the
    /// order the sequential seed implementation produced.
    fn run_grid(&self, rows: &[String], jobs: Vec<CellJob<'_>>) -> ExperimentResult {
        let mut result = ExperimentResult::with_labels(rows, &self.model_names());
        let scored = par_map(&jobs, |job| {
            self.run_cell(job.client, &job.prompt, &job.prepared)
        });
        for (job, trials) in jobs.iter().zip(scored) {
            for (bleu, chrf) in trials {
                result.push(&job.row, &job.model, bleu, chrf);
            }
        }
        result
    }

    /// The workflow-configuration experiment (Table 1).  Set `few_shot` to
    /// augment the prompt with the 2-node exemplar (Table 5's second row).
    pub fn run_configuration(&self, variant: PromptVariant, few_shot: bool) -> ExperimentResult {
        let rows = ExperimentKind::Configuration.row_labels();
        let mut jobs = Vec::new();
        for system in WorkflowSystemId::configuration_systems() {
            let reference = configuration_reference(system)
                .expect("configuration systems always have a reference");
            let prepared = self
                .references
                .get_or_prepare(&self.bleu, &self.chrf, reference);
            let mut prompt = configuration_prompt(system, variant);
            if few_shot {
                prompt = fewshot::augment_configuration_prompt(&prompt, system);
            }
            for client in &self.clients {
                jobs.push(CellJob {
                    row: system.name().to_owned(),
                    model: client.model().name().to_owned(),
                    client: client.as_ref(),
                    prompt: prompt.clone(),
                    prepared: Arc::clone(&prepared),
                });
            }
        }
        self.run_grid(&rows, jobs)
    }

    /// The task-code-annotation experiment (Table 2).
    pub fn run_annotation(&self, variant: PromptVariant) -> ExperimentResult {
        let rows = ExperimentKind::Annotation.row_labels();
        let mut jobs = Vec::new();
        for system in WorkflowSystemId::annotation_systems() {
            let reference =
                annotation_reference(system).expect("annotation systems always have a reference");
            let prepared = self
                .references
                .get_or_prepare(&self.bleu, &self.chrf, reference);
            let prompt = annotation_prompt(system, variant);
            for client in &self.clients {
                jobs.push(CellJob {
                    row: system.name().to_owned(),
                    model: client.model().name().to_owned(),
                    client: client.as_ref(),
                    prompt: prompt.clone(),
                    prepared: Arc::clone(&prepared),
                });
            }
        }
        self.run_grid(&rows, jobs)
    }

    /// The task-code-translation experiment (Table 3).
    pub fn run_translation(&self, variant: PromptVariant) -> ExperimentResult {
        let rows = ExperimentKind::Translation.row_labels();
        let mut jobs = Vec::new();
        for (source, target) in translation_pairs() {
            let reference =
                translation_reference(target).expect("translation targets always have a reference");
            let prepared = self
                .references
                .get_or_prepare(&self.bleu, &self.chrf, reference);
            let prompt = translation_prompt(source, target, variant);
            let row = translation_pair_label(source, target);
            for client in &self.clients {
                jobs.push(CellJob {
                    row: row.clone(),
                    model: client.model().name().to_owned(),
                    client: client.as_ref(),
                    prompt: prompt.clone(),
                    prepared: Arc::clone(&prepared),
                });
            }
        }
        self.run_grid(&rows, jobs)
    }

    /// Run one experiment with one prompt variant.
    pub fn run_experiment(&self, kind: ExperimentKind, variant: PromptVariant) -> ExperimentResult {
        match kind {
            ExperimentKind::Configuration => self.run_configuration(variant, false),
            ExperimentKind::Annotation => self.run_annotation(variant),
            ExperimentKind::Translation => self.run_translation(variant),
        }
    }

    /// The prompt-sensitivity study (Figure 1): every experiment under every
    /// prompt variant.
    pub fn run_prompt_sensitivity(&self) -> PromptSensitivity {
        let mut sensitivity = PromptSensitivity::default();
        for kind in ExperimentKind::ALL {
            let mut by_variant = BTreeMap::new();
            for variant in PromptVariant::ALL {
                by_variant.insert(
                    variant.label().to_owned(),
                    self.run_experiment(kind, variant),
                );
            }
            sensitivity.results.insert(kind, by_variant);
        }
        sensitivity
    }

    /// The few-shot prompting study (Table 5): the configuration experiment
    /// with and without the 2-node exemplar.
    pub fn run_few_shot_comparison(&self) -> FewShotComparison {
        FewShotComparison {
            zero_shot: self.run_configuration(PromptVariant::Original, false),
            few_shot: self.run_configuration(PromptVariant::Original, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_llm::ModelId;
    use wfspeak_metrics::Metric;

    fn quick_benchmark() -> Benchmark {
        Benchmark::with_simulated_models(BenchmarkConfig {
            trials: 2,
            ..BenchmarkConfig::default()
        })
    }

    #[test]
    fn benchmark_exposes_four_simulated_models_in_paper_order() {
        let b = quick_benchmark();
        assert_eq!(
            b.model_names(),
            vec!["o3", "Gemini-2.5-Pro", "Claude-Sonnet-4", "LLaMA-3.3-70B"]
        );
        assert_eq!(b.config().trials, 2);
    }

    #[test]
    fn configuration_result_has_table1_shape() {
        let result = quick_benchmark().run_configuration(PromptVariant::Original, false);
        assert_eq!(result.bleu.rows(), &["ADIOS2", "Henson", "Wilkins"]);
        assert_eq!(result.bleu.cols().len(), 4);
        for row in result.bleu.rows() {
            for col in result.bleu.cols() {
                assert_eq!(result.cell(Metric::Bleu, row, col).n, 2, "{row}/{col}");
                assert_eq!(result.cell(Metric::Chrf, row, col).n, 2, "{row}/{col}");
            }
        }
    }

    #[test]
    fn annotation_result_has_table2_shape() {
        let result = quick_benchmark().run_annotation(PromptVariant::Original);
        assert_eq!(
            result.bleu.rows(),
            &["ADIOS2", "Henson", "PyCOMPSs", "Parsl"]
        );
        assert!(result.bleu.grand_overall().mean > 0.0);
    }

    #[test]
    fn translation_result_has_table3_shape() {
        let result = quick_benchmark().run_translation(PromptVariant::Original);
        assert_eq!(result.bleu.rows().len(), 4);
        assert!(result.bleu.rows().contains(&"ADIOS2 to Henson".to_string()));
    }

    #[test]
    fn results_are_reproducible_for_a_fixed_config() {
        let a = quick_benchmark().run_configuration(PromptVariant::Original, false);
        let b = quick_benchmark().run_configuration(PromptVariant::Original, false);
        for row in a.bleu.rows() {
            for col in a.bleu.cols() {
                assert_eq!(
                    a.cell(Metric::Bleu, row, col).mean,
                    b.cell(Metric::Bleu, row, col).mean,
                    "{row}/{col}"
                );
            }
        }
    }

    #[test]
    fn parallel_grid_matches_sequential_cell_scoring() {
        // Rebuild every cell of the parallel grid result sequentially through
        // run_cell and compare the raw per-trial samples: the parallel path
        // must change scheduling only, never values or their order.
        let benchmark = quick_benchmark();
        let result = benchmark.run_configuration(PromptVariant::Original, false);
        for system in WorkflowSystemId::configuration_systems() {
            let reference = configuration_reference(system).unwrap();
            let prepared =
                benchmark
                    .references
                    .get_or_prepare(&benchmark.bleu, &benchmark.chrf, reference);
            let prompt = configuration_prompt(system, PromptVariant::Original);
            for client in &benchmark.clients {
                let trials = benchmark.run_cell(client.as_ref(), &prompt, &prepared);
                let bleu_samples: Vec<f64> = trials.iter().map(|t| t.0).collect();
                assert_eq!(
                    result.bleu.samples(system.name(), client.model().name()),
                    bleu_samples.as_slice(),
                    "{system:?}/{}",
                    client.model().name()
                );
            }
        }
    }

    #[test]
    fn reference_cache_prepares_each_reference_once() {
        let benchmark = quick_benchmark();
        assert!(benchmark.reference_cache().is_empty());
        benchmark.run_configuration(PromptVariant::Original, false);
        let after_first = benchmark.reference_cache().len();
        assert_eq!(after_first, 3, "one prepared pair per configuration system");
        // Re-running (any variant) reuses the cached prepared references.
        benchmark.run_configuration(PromptVariant::Detailed, false);
        assert_eq!(benchmark.reference_cache().len(), after_first);
        let stats = benchmark.reference_cache().stats();
        assert_eq!(stats.misses, 3, "one miss per distinct reference");
        assert_eq!(stats.hits, 3, "the second run hits for every system");
        assert_eq!(stats.lookups(), 6);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_cache_stops_growing_but_keeps_serving() {
        let cache = ReferenceCache::default();
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        cache.get_or_prepare_bounded(&bleu, &chrf, "ref a", 1);
        assert_eq!(cache.len(), 1);
        // A second distinct reference is prepared but not cached…
        let pair = cache.get_or_prepare_bounded(&bleu, &chrf, "ref b", 1);
        assert_eq!(pair.bleu.source(), "ref b");
        assert_eq!(cache.len(), 1);
        // …so asking again re-prepares (another miss), while the cached
        // reference still hits.
        cache.get_or_prepare_bounded(&bleu, &chrf, "ref b", 1);
        cache.get_or_prepare_bounded(&bleu, &chrf, "ref a", 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 3, "a once, b twice");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn sharded_cache_accounting_is_exact_under_concurrency() {
        // Many threads hammer overlapping references: the shard split must
        // not change the aggregate contract — misses equal distinct
        // insertions, every other lookup is a hit, and the bounded total
        // never exceeds the cap.
        let cache = Arc::new(ReferenceCache::default());
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        let references: Vec<String> = (0..24).map(|i| format!("shared reference {i}")).collect();
        let rounds = 8;
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let cache = Arc::clone(&cache);
                let bleu = &bleu;
                let chrf = &chrf;
                let references = &references;
                scope.spawn(move || {
                    for round in 0..rounds {
                        for (i, reference) in references.iter().enumerate() {
                            let pair =
                                cache.get_or_prepare_bounded(bleu, chrf, reference, usize::MAX);
                            assert_eq!(pair.bleu.source(), reference, "{worker}/{round}/{i}");
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(cache.len(), references.len());
        assert_eq!(stats.misses, references.len() as u64, "one insert each");
        assert_eq!(
            stats.lookups(),
            (8 * rounds * references.len()) as u64,
            "every lookup is accounted as exactly one hit or miss"
        );
    }

    #[test]
    fn sharded_cache_cap_bounds_the_total_across_shards() {
        let cache = Arc::new(ReferenceCache::default());
        let bleu = BleuScorer::default();
        let chrf = ChrfScorer::default();
        // 32 distinct references race into a cap of 5 from 4 threads: at
        // rest exactly 5 slots are occupied, never more.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let bleu = &bleu;
                let chrf = &chrf;
                scope.spawn(move || {
                    for i in 0..32 {
                        cache.get_or_prepare_bounded(bleu, chrf, &format!("capped {i}"), 5);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 5, "the cap is a total across shards");
    }

    #[test]
    fn few_shot_comparison_improves_every_model() {
        let comparison = quick_benchmark().run_few_shot_comparison();
        assert!(comparison.few_shot_improves_all_models());
        for (model, zero, few, _, _) in comparison.per_model_rows() {
            assert!(
                few.mean > zero.mean + 20.0,
                "{model}: few-shot {:.1} vs zero-shot {:.1}",
                few.mean,
                zero.mean
            );
        }
    }

    #[test]
    fn custom_client_set_is_respected() {
        let clients: Vec<Box<dyn LlmClient>> = vec![Box::new(SimulatedLlm::new(ModelId::O3))];
        let b = Benchmark::new(
            clients,
            BenchmarkConfig {
                trials: 1,
                ..BenchmarkConfig::default()
            },
        );
        let result = b.run_annotation(PromptVariant::Detailed);
        assert_eq!(result.bleu.cols(), &["o3"]);
        assert_eq!(result.cell(Metric::Bleu, "ADIOS2", "o3").n, 1);
    }
}
