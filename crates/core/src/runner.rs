//! The benchmark runner: prompt assembly, model querying, response
//! post-processing, scoring and aggregation.

use std::collections::BTreeMap;

use wfspeak_codemodel::extract_code;
use wfspeak_corpus::prompts::{
    annotation_prompt, configuration_prompt, translation_prompt, PromptVariant,
};
use wfspeak_corpus::references::{
    annotation_reference, configuration_reference, translation_reference,
};
use wfspeak_corpus::{fewshot, translation_pair_label, translation_pairs, WorkflowSystemId};
use wfspeak_llm::{CompletionRequest, LlmClient, SamplingParams, SimulatedLlm};
use wfspeak_metrics::{BleuScorer, ChrfScorer, Scorer};

use crate::config::BenchmarkConfig;
use crate::experiments::{ExperimentKind, FewShotComparison, PromptSensitivity};
use crate::result::ExperimentResult;

/// The benchmark: a set of models plus the run configuration.
pub struct Benchmark {
    clients: Vec<Box<dyn LlmClient>>,
    config: BenchmarkConfig,
    bleu: BleuScorer,
    chrf: ChrfScorer,
}

impl Benchmark {
    /// Build a benchmark over an explicit set of models.
    pub fn new(clients: Vec<Box<dyn LlmClient>>, config: BenchmarkConfig) -> Self {
        Benchmark {
            clients,
            config,
            bleu: BleuScorer::default(),
            chrf: ChrfScorer::default(),
        }
    }

    /// Build a benchmark over the paper's four models, simulated.
    pub fn with_simulated_models(config: BenchmarkConfig) -> Self {
        let clients: Vec<Box<dyn LlmClient>> = SimulatedLlm::all()
            .into_iter()
            .map(|m| Box::new(m) as Box<dyn LlmClient>)
            .collect();
        Benchmark::new(clients, config)
    }

    /// The run configuration.
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    /// Model display names in column order.
    pub fn model_names(&self) -> Vec<String> {
        self.clients
            .iter()
            .map(|c| c.model().name().to_owned())
            .collect()
    }

    /// Run one `(prompt, reference)` cell for one client over all trials,
    /// recording BLEU and ChrF per trial into `result`.
    fn run_cell(
        &self,
        client: &dyn LlmClient,
        prompt: &str,
        reference: &str,
        row: &str,
        result: &mut ExperimentResult,
    ) {
        for seed in self.config.trial_seeds() {
            let params = SamplingParams {
                temperature: self.config.temperature,
                top_p: self.config.top_p,
                seed,
            };
            let response = client.complete(&CompletionRequest::new(prompt.to_owned(), params));
            let code = extract_code(&response.text);
            let bleu = self.bleu.score(&code, reference);
            let chrf = self.chrf.score(&code, reference);
            result.push(row, client.model().name(), bleu, chrf);
        }
    }

    /// The workflow-configuration experiment (Table 1).  Set `few_shot` to
    /// augment the prompt with the 2-node exemplar (Table 5's second row).
    pub fn run_configuration(&self, variant: PromptVariant, few_shot: bool) -> ExperimentResult {
        let rows = ExperimentKind::Configuration.row_labels();
        let mut result = ExperimentResult::with_labels(&rows, &self.model_names());
        for system in WorkflowSystemId::configuration_systems() {
            let reference = configuration_reference(system)
                .expect("configuration systems always have a reference");
            let mut prompt = configuration_prompt(system, variant);
            if few_shot {
                prompt = fewshot::augment_configuration_prompt(&prompt, system);
            }
            for client in &self.clients {
                self.run_cell(client.as_ref(), &prompt, reference, system.name(), &mut result);
            }
        }
        result
    }

    /// The task-code-annotation experiment (Table 2).
    pub fn run_annotation(&self, variant: PromptVariant) -> ExperimentResult {
        let rows = ExperimentKind::Annotation.row_labels();
        let mut result = ExperimentResult::with_labels(&rows, &self.model_names());
        for system in WorkflowSystemId::annotation_systems() {
            let reference =
                annotation_reference(system).expect("annotation systems always have a reference");
            let prompt = annotation_prompt(system, variant);
            for client in &self.clients {
                self.run_cell(client.as_ref(), &prompt, reference, system.name(), &mut result);
            }
        }
        result
    }

    /// The task-code-translation experiment (Table 3).
    pub fn run_translation(&self, variant: PromptVariant) -> ExperimentResult {
        let rows = ExperimentKind::Translation.row_labels();
        let mut result = ExperimentResult::with_labels(&rows, &self.model_names());
        for (source, target) in translation_pairs() {
            let reference =
                translation_reference(target).expect("translation targets always have a reference");
            let prompt = translation_prompt(source, target, variant);
            let row = translation_pair_label(source, target);
            for client in &self.clients {
                self.run_cell(client.as_ref(), &prompt, reference, &row, &mut result);
            }
        }
        result
    }

    /// Run one experiment with one prompt variant.
    pub fn run_experiment(&self, kind: ExperimentKind, variant: PromptVariant) -> ExperimentResult {
        match kind {
            ExperimentKind::Configuration => self.run_configuration(variant, false),
            ExperimentKind::Annotation => self.run_annotation(variant),
            ExperimentKind::Translation => self.run_translation(variant),
        }
    }

    /// The prompt-sensitivity study (Figure 1): every experiment under every
    /// prompt variant.
    pub fn run_prompt_sensitivity(&self) -> PromptSensitivity {
        let mut sensitivity = PromptSensitivity::default();
        for kind in ExperimentKind::ALL {
            let mut by_variant = BTreeMap::new();
            for variant in PromptVariant::ALL {
                by_variant.insert(variant.label().to_owned(), self.run_experiment(kind, variant));
            }
            sensitivity.results.insert(kind, by_variant);
        }
        sensitivity
    }

    /// The few-shot prompting study (Table 5): the configuration experiment
    /// with and without the 2-node exemplar.
    pub fn run_few_shot_comparison(&self) -> FewShotComparison {
        FewShotComparison {
            zero_shot: self.run_configuration(PromptVariant::Original, false),
            few_shot: self.run_configuration(PromptVariant::Original, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_llm::ModelId;
    use wfspeak_metrics::Metric;

    fn quick_benchmark() -> Benchmark {
        Benchmark::with_simulated_models(BenchmarkConfig {
            trials: 2,
            ..BenchmarkConfig::default()
        })
    }

    #[test]
    fn benchmark_exposes_four_simulated_models_in_paper_order() {
        let b = quick_benchmark();
        assert_eq!(
            b.model_names(),
            vec!["o3", "Gemini-2.5-Pro", "Claude-Sonnet-4", "LLaMA-3.3-70B"]
        );
        assert_eq!(b.config().trials, 2);
    }

    #[test]
    fn configuration_result_has_table1_shape() {
        let result = quick_benchmark().run_configuration(PromptVariant::Original, false);
        assert_eq!(result.bleu.rows(), &["ADIOS2", "Henson", "Wilkins"]);
        assert_eq!(result.bleu.cols().len(), 4);
        for row in result.bleu.rows() {
            for col in result.bleu.cols() {
                assert_eq!(result.cell(Metric::Bleu, row, col).n, 2, "{row}/{col}");
                assert_eq!(result.cell(Metric::Chrf, row, col).n, 2, "{row}/{col}");
            }
        }
    }

    #[test]
    fn annotation_result_has_table2_shape() {
        let result = quick_benchmark().run_annotation(PromptVariant::Original);
        assert_eq!(result.bleu.rows(), &["ADIOS2", "Henson", "PyCOMPSs", "Parsl"]);
        assert!(result.bleu.grand_overall().mean > 0.0);
    }

    #[test]
    fn translation_result_has_table3_shape() {
        let result = quick_benchmark().run_translation(PromptVariant::Original);
        assert_eq!(result.bleu.rows().len(), 4);
        assert!(result.bleu.rows().contains(&"ADIOS2 to Henson".to_string()));
    }

    #[test]
    fn results_are_reproducible_for_a_fixed_config() {
        let a = quick_benchmark().run_configuration(PromptVariant::Original, false);
        let b = quick_benchmark().run_configuration(PromptVariant::Original, false);
        for row in a.bleu.rows() {
            for col in a.bleu.cols() {
                assert_eq!(
                    a.cell(Metric::Bleu, row, col).mean,
                    b.cell(Metric::Bleu, row, col).mean,
                    "{row}/{col}"
                );
            }
        }
    }

    #[test]
    fn few_shot_comparison_improves_every_model() {
        let comparison = quick_benchmark().run_few_shot_comparison();
        assert!(comparison.few_shot_improves_all_models());
        for (model, zero, few, _, _) in comparison.per_model_rows() {
            assert!(
                few.mean > zero.mean + 20.0,
                "{model}: few-shot {:.1} vs zero-shot {:.1}",
                few.mean,
                zero.mean
            );
        }
    }

    #[test]
    fn custom_client_set_is_respected() {
        let clients: Vec<Box<dyn LlmClient>> = vec![Box::new(SimulatedLlm::new(ModelId::O3))];
        let b = Benchmark::new(clients, BenchmarkConfig { trials: 1, ..BenchmarkConfig::default() });
        let result = b.run_annotation(PromptVariant::Detailed);
        assert_eq!(result.bleu.cols(), &["o3"]);
        assert_eq!(result.cell(Metric::Bleu, "ADIOS2", "o3").n, 1);
    }
}
