//! Benchmark configuration.

use serde::{Deserialize, Serialize};

/// Knobs controlling a benchmark run, mirroring the paper's setup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkConfig {
    /// Repeated trials per cell (the paper repeats every experiment 5
    /// times to mitigate response variability).
    pub trials: usize,
    /// Sampling temperature (paper: 0.2; ignored by o3).
    pub temperature: f64,
    /// Nucleus-sampling top-p (paper: 0.95; ignored by o3).
    pub top_p: f64,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            trials: 5,
            temperature: 0.2,
            top_p: 0.95,
            base_seed: 2025,
        }
    }
}

impl BenchmarkConfig {
    /// A faster configuration for smoke tests and doc examples (2 trials).
    pub fn quick() -> Self {
        BenchmarkConfig {
            trials: 2,
            ..BenchmarkConfig::default()
        }
    }

    /// Seeds of the individual trials.
    pub fn trial_seeds(&self) -> Vec<u64> {
        (0..self.trials as u64)
            .map(|i| self.base_seed + i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = BenchmarkConfig::default();
        assert_eq!(c.trials, 5);
        assert!((c.temperature - 0.2).abs() < f64::EPSILON);
        assert!((c.top_p - 0.95).abs() < f64::EPSILON);
    }

    #[test]
    fn trial_seeds_are_sequential_and_distinct() {
        let c = BenchmarkConfig {
            trials: 3,
            base_seed: 10,
            ..BenchmarkConfig::default()
        };
        assert_eq!(c.trial_seeds(), vec![10, 11, 12]);
    }

    #[test]
    fn quick_config_reduces_trials_only() {
        let q = BenchmarkConfig::quick();
        assert_eq!(q.trials, 2);
        assert!((q.temperature - 0.2).abs() < f64::EPSILON);
    }

    #[test]
    fn serde_round_trip() {
        let c = BenchmarkConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: BenchmarkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trials, c.trials);
        assert_eq!(back.base_seed, c.base_seed);
    }
}
