//! Minimal deterministic data parallelism for the benchmark grid.
//!
//! The workspace vendors no thread-pool crate, so this module provides the
//! one primitive the runner needs: map a function over a work list on scoped
//! threads, returning results **in input order** regardless of completion
//! order. Workers claim items through an atomic cursor, so uneven cell costs
//! (different models/tiers produce very different artifact sizes) balance
//! automatically.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` in parallel, preserving input order in the output.
///
/// Spawns at most `available_parallelism` (or `items.len()`, whichever is
/// smaller) scoped threads; with one item or one core it simply runs inline.
/// `f` must be `Sync` because all workers share it.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    local.push((idx, f(&items[idx])));
                }
                local
            }));
        }
        for handle in handles {
            indexed.extend(handle.join().expect("par_map worker panicked"));
        }
    });
    indexed.sort_by_key(|(idx, _)| *idx);
    indexed.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn order_is_stable_under_skewed_workloads() {
        // Early items sleep, late items return instantly: completion order is
        // roughly reversed, output order must not be.
        let items: Vec<u64> = (0..16).collect();
        let results = par_map(&items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * x));
            }
            x
        });
        assert_eq!(results, items);
    }
}
