//! Experiment results: paired BLEU/ChrF score matrices plus rendering in the
//! paper's table layout.

use serde::{Deserialize, Serialize};

use wfspeak_metrics::{Metric, ScoreMatrix, Summary};

/// The result of one experiment: a BLEU matrix and a ChrF matrix over the
/// same `(system row, model column)` grid.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// BLEU scores per cell (all trials).
    pub bleu: ScoreMatrix,
    /// ChrF scores per cell (all trials).
    pub chrf: ScoreMatrix,
}

impl ExperimentResult {
    /// Create a result with pre-declared row/column order.
    pub fn with_labels(rows: &[String], cols: &[String]) -> Self {
        ExperimentResult {
            bleu: ScoreMatrix::with_labels(rows, cols),
            chrf: ScoreMatrix::with_labels(rows, cols),
        }
    }

    /// Record one trial's pair of scores.
    pub fn push(&mut self, row: &str, col: &str, bleu: f64, chrf: f64) {
        self.bleu.push(row, col, bleu);
        self.chrf.push(row, col, chrf);
    }

    /// The matrix for a metric.
    pub fn matrix(&self, metric: Metric) -> &ScoreMatrix {
        match metric {
            Metric::Bleu => &self.bleu,
            Metric::Chrf => &self.chrf,
        }
    }

    /// Summary of one cell for one metric.
    pub fn cell(&self, metric: Metric, row: &str, col: &str) -> Summary {
        self.matrix(metric).cell(row, col)
    }

    /// Render the result in the paper's layout: one row per system, one
    /// `BLEU / ChrF` column pair per model, plus Overall row and column.
    pub fn render_table(&self, title: &str) -> String {
        let rows = self.bleu.rows().to_vec();
        let cols = self.bleu.cols().to_vec();
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        let row_width = rows
            .iter()
            .map(String::len)
            .chain(std::iter::once(18))
            .max()
            .unwrap_or(18)
            + 2;
        let cell_w = 12usize;
        // Header: model names spanning BLEU+ChrF pairs.
        out.push_str(&format!("{:row_width$}", "Workflow systems"));
        for c in cols.iter().chain(std::iter::once(&"Overall".to_string())) {
            out.push_str(&format!("{:>width$}", c, width = cell_w * 2));
        }
        out.push('\n');
        out.push_str(&format!("{:row_width$}", ""));
        for _ in 0..=cols.len() {
            out.push_str(&format!("{:>cell_w$}{:>cell_w$}", "BLEU", "ChrF"));
        }
        out.push('\n');
        for r in &rows {
            out.push_str(&format!("{r:<row_width$}"));
            for c in &cols {
                out.push_str(&format!(
                    "{:>cell_w$}{:>cell_w$}",
                    self.bleu.cell(r, c).paper_format(),
                    self.chrf.cell(r, c).paper_format()
                ));
            }
            out.push_str(&format!(
                "{:>cell_w$}{:>cell_w$}\n",
                self.bleu.row_overall(r).paper_format(),
                self.chrf.row_overall(r).paper_format()
            ));
        }
        out.push_str(&format!("{:<row_width$}", "Overall"));
        for c in &cols {
            out.push_str(&format!(
                "{:>cell_w$}{:>cell_w$}",
                self.bleu.col_overall(c).paper_format(),
                self.chrf.col_overall(c).paper_format()
            ));
        }
        out.push_str(&format!(
            "{:>cell_w$}{:>cell_w$}\n",
            self.bleu.grand_overall().paper_format(),
            self.chrf.grand_overall().paper_format()
        ));
        out
    }

    /// Render as CSV with both metrics (`metric,row,col,mean,std_err,n`).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("metric,row,col,mean,std_err,n\n");
        for (metric, matrix) in [(Metric::Bleu, &self.bleu), (Metric::Chrf, &self.chrf)] {
            for row in matrix.rows() {
                for col in matrix.cols() {
                    let s = matrix.cell(row, col);
                    if s.n > 0 {
                        out.push_str(&format!(
                            "{},{row},{col},{:.3},{:.3},{}\n",
                            metric.label(),
                            s.mean,
                            s.std_err,
                            s.n
                        ));
                    }
                }
            }
        }
        out
    }

    /// The best-performing model column by overall BLEU (the bold column in
    /// the paper's tables).
    pub fn best_model(&self) -> Option<String> {
        self.bleu.best_column().map(str::to_owned)
    }

    /// The best row (system / pair) by overall BLEU (the bold row).
    pub fn best_row(&self) -> Option<String> {
        self.bleu.best_row().map(str::to_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        let mut r = ExperimentResult::default();
        for trial in 0..3 {
            r.push("ADIOS2", "o3", 60.0 + trial as f64, 62.0 + trial as f64);
            r.push("ADIOS2", "Gemini-2.5-Pro", 72.0, 71.0);
            r.push("Henson", "o3", 20.0, 22.0);
            r.push("Henson", "Gemini-2.5-Pro", 26.0, 28.0);
        }
        r
    }

    #[test]
    fn push_populates_both_metrics() {
        let r = sample();
        assert_eq!(r.cell(Metric::Bleu, "ADIOS2", "o3").n, 3);
        assert_eq!(r.cell(Metric::Chrf, "ADIOS2", "o3").n, 3);
        assert!((r.cell(Metric::Bleu, "ADIOS2", "o3").mean - 61.0).abs() < 1e-9);
        assert!((r.cell(Metric::Chrf, "Henson", "o3").mean - 22.0).abs() < 1e-9);
    }

    #[test]
    fn render_table_has_header_rows_and_overall() {
        let r = sample();
        let table = r.render_table("Table 1: configuration");
        assert!(table.contains("Table 1: configuration"));
        assert!(table.contains("BLEU"));
        assert!(table.contains("ChrF"));
        assert!(table.contains("ADIOS2"));
        assert!(table.contains("Overall"));
        assert!(table.lines().count() >= 6);
    }

    #[test]
    fn best_model_and_row() {
        let r = sample();
        assert_eq!(r.best_model().as_deref(), Some("Gemini-2.5-Pro"));
        assert_eq!(r.best_row().as_deref(), Some("ADIOS2"));
    }

    #[test]
    fn csv_contains_both_metrics() {
        let csv = sample().render_csv();
        assert!(csv.contains("BLEU,ADIOS2,o3"));
        assert!(csv.contains("ChrF,Henson,Gemini-2.5-Pro"));
    }

    #[test]
    fn with_labels_fixes_order() {
        let r = ExperimentResult::with_labels(
            &["Henson".to_string(), "ADIOS2".to_string()],
            &["o3".to_string()],
        );
        assert_eq!(r.bleu.rows()[0], "Henson");
        assert_eq!(r.chrf.rows()[0], "Henson");
    }

    #[test]
    fn serde_round_trip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.cell(Metric::Bleu, "ADIOS2", "o3").mean,
            r.cell(Metric::Bleu, "ADIOS2", "o3").mean
        );
    }
}
