//! `wfspeak-core` — the benchmark harness that reproduces the paper's
//! evaluation.
//!
//! The harness wires the other crates together: it builds prompts from the
//! [`wfspeak_corpus`] scenario, queries a set of [`wfspeak_llm::LlmClient`]s
//! (the simulated o3 / Gemini-2.5-Pro / Claude-Sonnet-4 / LLaMA-3.3-70B by
//! default), extracts the code payload from each response, scores it against
//! the reference artifact with BLEU and ChrF, and aggregates repeated trials
//! into the paper's tables and figures:
//!
//! | Experiment | Paper artifact | Entry point |
//! |---|---|---|
//! | Workflow configuration | Table 1 | [`Benchmark::run_configuration`] |
//! | Task code annotation | Table 2 | [`Benchmark::run_annotation`] |
//! | Task code translation | Table 3 | [`Benchmark::run_translation`] |
//! | Qualitative translations | Table 4 | [`report::qualitative_translations`] |
//! | Prompt sensitivity | Figure 1 | [`Benchmark::run_prompt_sensitivity`] |
//! | Few-shot prompting | Table 5 | [`Benchmark::run_few_shot_comparison`] |
//! | Qualitative configurations | Table 6 | [`report::qualitative_configurations`] |
//!
//! Beyond per-metric scoring, [`Benchmark::run_evaluation`] takes a whole
//! experiment grid through the full pipeline — code extraction, API-call
//! comparison (missing / extra / hallucinated calls) and BLEU/ChrF — in one
//! pass; see the [`eval`] module.  [`Benchmark::run_execution`] goes one
//! step further and *runs* every generated configuration on the
//! `wfspeak-runtime` engine under a bounded sandbox, scoring runnability
//! and trace fidelity against the reference artifact's run; see the
//! [`exec`] module.
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_core::{Benchmark, BenchmarkConfig};
//!
//! let benchmark = Benchmark::with_simulated_models(BenchmarkConfig { trials: 2, ..BenchmarkConfig::default() });
//! let result = benchmark.run_configuration(Default::default(), false);
//! println!("{}", result.render_table("Workflow configuration"));
//! assert_eq!(result.bleu.rows().len(), 3); // ADIOS2, Henson, Wilkins
//! ```

pub mod config;
pub mod eval;
pub mod exec;
pub mod experiments;
pub mod parallel;
pub mod report;
pub mod result;
pub mod runner;

pub use config::BenchmarkConfig;
pub use eval::{
    evaluate_prepared, EvalPipeline, EvaluatedCell, Evaluation, EvaluationGrid, SystemProfile,
};
pub use exec::{
    execute_artifact, ExecutedCell, ExecutionGrid, ExecutionPipeline, ExecutionScore, SandboxConfig,
};
pub use experiments::{ExperimentKind, FewShotComparison, PromptSensitivity};
pub use result::ExperimentResult;
pub use runner::{Benchmark, PreparedPair, ReferenceCache};

pub use wfspeak_corpus::prompts::PromptVariant;
pub use wfspeak_corpus::WorkflowSystemId;
pub use wfspeak_llm::ModelId;
