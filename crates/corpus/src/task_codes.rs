//! The unannotated user task codes given to the LLMs.
//!
//! The C producer emulates an HPC simulation: per timestep it fills an array
//! with random numbers, reduces the local sums over MPI and prints the
//! total.  Comment markers show where a workflow system's API calls belong —
//! exactly the shape of code the paper provides to the models in the
//! annotation experiment.  The Python producer/consumer are the equivalents
//! used for Parsl and PyCOMPSs.

use crate::WorkflowSystemId;

/// Plain C producer task (no workflow system calls), used for the ADIOS2 and
/// Henson annotation experiments.
pub const C_PRODUCER: &str = r#"#include <stdio.h>
#include <stdlib.h>
#include <unistd.h>
#include <time.h>
#include <mpi.h>

int main(int argc, char** argv)
{
    MPI_Init(&argc, &argv);

    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    size_t n = 50;
    if (argc > 1) n = atoi(argv[1]);
    if (rank == 0) printf("Using %zu random numbers\n", n);

    int iterations = 3;
    if (argc > 2) iterations = atoi(argv[2]);

    int sleep_interval = 0;
    if (argc > 3) sleep_interval = atoi(argv[3]);

    srand(time(NULL) + rank);

    /* workflow: initialize the coupling layer here */
    /* workflow: declare the outputs (array, t) here */

    int t;
    for (t = 0; t < iterations; ++t) {
        if (sleep_interval) sleep(sleep_interval);

        float* array = (float*) malloc(n * sizeof(float));
        size_t i;
        for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

        float sum = 0;
        for (i = 0; i < n; ++i) sum += array[i];
        printf("[%d] Simulation [t=%d]: sum = %f\n", rank, t, sum);

        float total_sum;
        MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
        if (rank == 0)
            printf("[%d] Simulation [t=%d]: total_sum = %f\n", rank, t, total_sum);

        /* workflow: publish array and t to the consumer here */

        free(array);
    }

    /* workflow: finalize the coupling layer here */

    MPI_Finalize();
    return 0;
}
"#;

/// Plain C consumer task reading the producer's published data.
pub const C_CONSUMER: &str = r#"#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>

int main(int argc, char** argv)
{
    MPI_Init(&argc, &argv);

    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    /* workflow: initialize the coupling layer here */
    /* workflow: open the producer's output here */

    int done = 0;
    while (!done) {
        /* workflow: read the next step's array and t here */
        float* array = NULL;
        size_t n = 0;
        int t = -1;

        if (array == NULL) { done = 1; continue; }

        float sum = 0;
        size_t i;
        for (i = 0; i < n; ++i) sum += array[i];
        printf("[%d] Analysis [t=%d]: sum = %f\n", rank, t, sum);

        free(array);
    }

    /* workflow: finalize the coupling layer here */

    MPI_Finalize();
    return 0;
}
"#;

/// Plain Python producer task (no workflow system decorators), used for the
/// Parsl and PyCOMPSs annotation experiments.
pub const PY_PRODUCER: &str = r#"import random
import sys
import time


def produce(n, iterations, sleep_interval, outfile):
    """Emulate an HPC simulation producing one array per timestep."""
    for t in range(iterations):
        if sleep_interval:
            time.sleep(sleep_interval)

        array = [random.random() for _ in range(n)]
        total = sum(array)
        print(f"Simulation [t={t}]: sum = {total}")

        # workflow: publish the array for the consumer task here
        with open(outfile, "w") as f:
            f.write(" ".join(str(x) for x in array))

    return outfile


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    sleep_interval = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    # workflow: turn produce() into a workflow task and launch it here
    produce(n, iterations, sleep_interval, "output.txt")


if __name__ == "__main__":
    main()
"#;

/// Plain Python consumer task reading the producer's output file.
pub const PY_CONSUMER: &str = r#"import sys


def consume(infile):
    """Analyse the array written by the producer."""
    with open(infile) as f:
        array = [float(x) for x in f.read().split()]
    total = sum(array)
    print(f"Analysis: sum = {total}")
    return total


def main():
    infile = sys.argv[1] if len(sys.argv) > 1 else "output.txt"
    # workflow: wait for the producer's output before reading it here
    consume(infile)


if __name__ == "__main__":
    main()
"#;

/// The unannotated producer task code appropriate for `system` (C for the in
/// situ / I/O systems, Python for the Python task systems).
pub fn producer_for(system: WorkflowSystemId) -> &'static str {
    if system.uses_python_tasks() {
        PY_PRODUCER
    } else {
        C_PRODUCER
    }
}

/// The unannotated consumer task code appropriate for `system`.
pub fn consumer_for(system: WorkflowSystemId) -> &'static str {
    if system.uses_python_tasks() {
        PY_CONSUMER
    } else {
        C_CONSUMER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_producer_has_mpi_and_markers() {
        assert!(C_PRODUCER.contains("MPI_Init"));
        assert!(C_PRODUCER.contains("MPI_Reduce"));
        assert!(C_PRODUCER.contains("/* workflow:"));
        assert!(C_PRODUCER.contains("total_sum"));
    }

    #[test]
    fn c_producer_has_no_workflow_api_calls() {
        for api in ["adios2_", "henson_", "@task", "@python_app"] {
            assert!(
                !C_PRODUCER.contains(api),
                "unexpected `{api}` in bare producer"
            );
        }
    }

    #[test]
    fn python_producer_has_markers_and_no_decorators() {
        assert!(PY_PRODUCER.contains("# workflow:"));
        assert!(!PY_PRODUCER.contains("@task"));
        assert!(!PY_PRODUCER.contains("@python_app"));
        assert!(PY_PRODUCER.contains("def produce("));
    }

    #[test]
    fn producer_selection_by_system() {
        assert_eq!(producer_for(WorkflowSystemId::Adios2), C_PRODUCER);
        assert_eq!(producer_for(WorkflowSystemId::Henson), C_PRODUCER);
        assert_eq!(producer_for(WorkflowSystemId::Parsl), PY_PRODUCER);
        assert_eq!(producer_for(WorkflowSystemId::PyCompss), PY_PRODUCER);
    }

    #[test]
    fn consumer_selection_by_system() {
        assert_eq!(consumer_for(WorkflowSystemId::Henson), C_CONSUMER);
        assert_eq!(consumer_for(WorkflowSystemId::Parsl), PY_CONSUMER);
    }

    #[test]
    fn consumers_reference_analysis_not_simulation() {
        assert!(C_CONSUMER.contains("Analysis"));
        assert!(PY_CONSUMER.contains("Analysis"));
    }
}
