//! Few-shot prompting support (Section 4.5 / Table 5).
//!
//! The few-shot experiment augments the original workflow-configuration
//! prompt with one worked example: the configuration file of a simple
//! 2-node workflow for the same system.  Providing this context is what
//! lets the models avoid hallucinating nonexistent fields (`inputs`,
//! `outputs`, `command`, `dependencies`, ...).

use crate::references::configs;
use crate::WorkflowSystemId;

/// The 2-node exemplar configuration for `system`, if the system takes part
/// in the configuration experiment.
pub fn exemplar(system: WorkflowSystemId) -> Option<&'static str> {
    match system {
        WorkflowSystemId::Wilkins => Some(configs::WILKINS_2NODE),
        WorkflowSystemId::Adios2 => Some(configs::ADIOS2_2NODE),
        WorkflowSystemId::Henson => Some(configs::HENSON_2NODE),
        WorkflowSystemId::Parsl | WorkflowSystemId::PyCompss => None,
    }
}

/// Augment a configuration prompt with the 2-node exemplar for `system`.
/// Returns the prompt unchanged when the system has no exemplar.
pub fn augment_configuration_prompt(prompt: &str, system: WorkflowSystemId) -> String {
    match exemplar(system) {
        Some(example) => format!(
            "{prompt}\n\nHere is an example configuration file for a simple 2-node workflow \
             (one producer and one consumer) in the {} workflow system:\n\n```\n{example}```\n\n\
             Follow the same structure and field names when writing the requested configuration.",
            system.name()
        ),
        None => prompt.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::{configuration_prompt, PromptVariant};

    #[test]
    fn exemplars_exist_for_configuration_systems_only() {
        for sys in WorkflowSystemId::configuration_systems() {
            assert!(exemplar(sys).is_some(), "{sys} missing exemplar");
        }
        assert!(exemplar(WorkflowSystemId::Parsl).is_none());
        assert!(exemplar(WorkflowSystemId::PyCompss).is_none());
    }

    #[test]
    fn augmented_prompt_contains_example_and_original_request() {
        let base = configuration_prompt(WorkflowSystemId::Wilkins, PromptVariant::Original);
        let aug = augment_configuration_prompt(&base, WorkflowSystemId::Wilkins);
        assert!(aug.contains(&base));
        assert!(aug.contains("inports:"));
        assert!(aug.contains("outports:"));
        assert!(aug.len() > base.len());
    }

    #[test]
    fn augmentation_is_identity_for_systems_without_exemplar() {
        let base = "configure something";
        assert_eq!(
            augment_configuration_prompt(base, WorkflowSystemId::Parsl),
            base
        );
    }

    #[test]
    fn exemplar_is_smaller_than_target_reference() {
        // The exemplar describes a 2-node workflow, the target a 3-node one.
        let two = exemplar(WorkflowSystemId::Wilkins).unwrap();
        assert!(two.len() < configs::WILKINS_3NODE.len());
        assert!(two.matches("- func:").count() == 2);
    }
}
