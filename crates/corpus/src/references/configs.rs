//! Reference workflow configuration files.
//!
//! The 3-node workflow is the one described in the paper's sample prompt:
//! one producer generating `grid` and `particles` datasets on 3 processes,
//! `consumer1` reading `grid` on 1 process and `consumer2` reading
//! `particles` on 1 process.

/// Wilkins configuration for the 3-node workflow — the ground truth shown in
/// Table 6 (left) of the paper.
pub const WILKINS_3NODE: &str = r#"tasks:
  - func: producer
    nprocs: 3
    outports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
          - name: /group1/particles
            file: 0
            memory: 1
  - func: consumer1
    nprocs: 1
    inports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
  - func: consumer2
    nprocs: 1
    inports:
      - filename: outfile.h5
        dsets:
          - name: /group1/particles
            file: 0
            memory: 1
"#;

/// Wilkins configuration for a simple 2-node workflow (one producer, one
/// consumer, single dataset) — the exemplar added to the prompt in the
/// few-shot experiment.
pub const WILKINS_2NODE: &str = r#"tasks:
  - func: producer
    nprocs: 1
    outports:
      - filename: outfile.h5
        dsets:
          - name: /group1/particles
            file: 0
            memory: 1
  - func: consumer
    nprocs: 1
    inports:
      - filename: outfile.h5
        dsets:
          - name: /group1/particles
            file: 0
            memory: 1
"#;

/// ADIOS2 YAML runtime configuration for the 3-node workflow: one IO per
/// data stream, SST engine for in situ (memory) exchange.
pub const ADIOS2_3NODE: &str = r#"---
- IO: GridStream
  Engine:
    Type: SST
    RendezvousReaderCount: 1
    QueueLimit: 1
  Variables:
    - Variable: grid
      Shape: [64, 64]
      Type: float
- IO: ParticlesStream
  Engine:
    Type: SST
    RendezvousReaderCount: 1
    QueueLimit: 1
  Variables:
    - Variable: particles
      Shape: [1024, 3]
      Type: float
- IO: GridReader
  Engine:
    Type: SST
- IO: ParticlesReader
  Engine:
    Type: SST
"#;

/// ADIOS2 YAML runtime configuration for the 2-node few-shot exemplar.
pub const ADIOS2_2NODE: &str = r#"---
- IO: ParticlesStream
  Engine:
    Type: SST
    RendezvousReaderCount: 1
  Variables:
    - Variable: particles
      Shape: [1024, 3]
      Type: float
- IO: ParticlesReader
  Engine:
    Type: SST
"#;

/// Henson script for the 3-node workflow: one puppet per task plus process
/// group assignments.
pub const HENSON_3NODE: &str = r#"producer   = ./producer.so 50 3
consumer1  = ./consumer_grid.so
consumer2  = ./consumer_particles.so

[3] producer
[1] consumer1
[1] consumer2
"#;

/// Henson script for the 2-node few-shot exemplar.
pub const HENSON_2NODE: &str = r#"producer  = ./producer.so 50 3
consumer  = ./consumer.so

[1] producer
[1] consumer
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilkins_3node_matches_paper_structure() {
        assert!(WILKINS_3NODE.contains("func: producer"));
        assert!(WILKINS_3NODE.contains("nprocs: 3"));
        assert!(WILKINS_3NODE.contains("func: consumer1"));
        assert!(WILKINS_3NODE.contains("func: consumer2"));
        assert!(WILKINS_3NODE.contains("inports:"));
        assert!(WILKINS_3NODE.contains("outports:"));
        assert!(WILKINS_3NODE.contains("/group1/grid"));
        assert!(WILKINS_3NODE.contains("/group1/particles"));
        // The fields o3 hallucinated in zero-shot mode must not be present.
        assert!(!WILKINS_3NODE.contains("inputs:"));
        assert!(!WILKINS_3NODE.contains("outputs:"));
        assert!(!WILKINS_3NODE.contains("command:"));
        assert!(!WILKINS_3NODE.contains("dependencies:"));
    }

    #[test]
    fn wilkins_configs_parse_as_yaml() {
        for (name, src) in [("3node", WILKINS_3NODE), ("2node", WILKINS_2NODE)] {
            let doc = wfspeak_wyaml::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let tasks = doc.get("tasks").unwrap().as_seq().unwrap();
            assert!(!tasks.is_empty());
        }
    }

    #[test]
    fn wilkins_3node_has_three_tasks_and_2node_has_two() {
        let doc3 = wfspeak_wyaml::parse(WILKINS_3NODE).unwrap();
        assert_eq!(doc3.get("tasks").unwrap().as_seq().unwrap().len(), 3);
        let doc2 = wfspeak_wyaml::parse(WILKINS_2NODE).unwrap();
        assert_eq!(doc2.get("tasks").unwrap().as_seq().unwrap().len(), 2);
    }

    #[test]
    fn adios2_configs_parse_as_yaml_io_list() {
        for src in [ADIOS2_3NODE, ADIOS2_2NODE] {
            let doc = wfspeak_wyaml::parse(src).unwrap();
            let ios = doc.as_seq().unwrap();
            assert!(ios.len() >= 2);
            for io in ios {
                assert!(io.get("IO").is_some());
                assert!(io.get("Engine").is_some());
            }
        }
    }

    #[test]
    fn adios2_3node_uses_sst_engine() {
        let doc = wfspeak_wyaml::parse(ADIOS2_3NODE).unwrap();
        let first = &doc.as_seq().unwrap()[0];
        assert_eq!(
            first.lookup_path("Engine/Type").unwrap().as_str(),
            Some("SST")
        );
    }

    #[test]
    fn henson_scripts_have_puppets_and_groups() {
        for src in [HENSON_3NODE, HENSON_2NODE] {
            assert!(src.contains(".so"));
            assert!(src.contains("= ./"));
            assert!(src.lines().any(|l| l.trim_start().starts_with('[')));
        }
        assert!(HENSON_3NODE.contains("[3] producer"));
    }
}
