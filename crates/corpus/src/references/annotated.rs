//! Reference annotated producer task codes — the ground truth for the
//! annotation (Table 2) and translation (Table 3) experiments.

/// C producer annotated with the ADIOS2 C bindings (SST-style streaming
/// write of `array` and the timestep `t`).
pub const ADIOS2_PRODUCER: &str = r#"#include <stdio.h>
#include <stdlib.h>
#include <unistd.h>
#include <time.h>
#include <mpi.h>
#include <adios2_c.h>

int main(int argc, char** argv)
{
    MPI_Init(&argc, &argv);

    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    size_t n = 50;
    if (argc > 1) n = atoi(argv[1]);
    if (rank == 0) printf("Using %zu random numbers\n", n);

    int iterations = 3;
    if (argc > 2) iterations = atoi(argv[2]);

    int sleep_interval = 0;
    if (argc > 3) sleep_interval = atoi(argv[3]);

    srand(time(NULL) + rank);

    adios2_adios* adios = adios2_init_mpi(MPI_COMM_WORLD);
    adios2_io* io = adios2_declare_io(adios, "SimulationOutput");

    size_t shape[2] = {(size_t) size, n};
    size_t start[2] = {(size_t) rank, 0};
    size_t count[2] = {1, n};
    adios2_variable* var_array = adios2_define_variable(
        io, "array", adios2_type_float, 2, shape, start, count,
        adios2_constant_dims_true);
    adios2_variable* var_t = adios2_define_variable(
        io, "t", adios2_type_int32_t, 0, NULL, NULL, NULL,
        adios2_constant_dims_true);

    adios2_engine* engine = adios2_open(io, "output.bp", adios2_mode_write);

    int t;
    for (t = 0; t < iterations; ++t) {
        if (sleep_interval) sleep(sleep_interval);

        float* array = (float*) malloc(n * sizeof(float));
        size_t i;
        for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

        float sum = 0;
        for (i = 0; i < n; ++i) sum += array[i];
        printf("[%d] Simulation [t=%d]: sum = %f\n", rank, t, sum);

        float total_sum;
        MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
        if (rank == 0)
            printf("[%d] Simulation [t=%d]: total_sum = %f\n", rank, t, total_sum);

        adios2_step_status status;
        adios2_begin_step(engine, adios2_step_mode_append, -1.0, &status);
        adios2_put(engine, var_array, array, adios2_mode_deferred);
        adios2_put(engine, var_t, &t, adios2_mode_deferred);
        adios2_end_step(engine);

        free(array);
    }

    adios2_close(engine);
    adios2_finalize(adios);

    MPI_Finalize();
    return 0;
}
"#;

/// C producer annotated with the Henson cooperative-multitasking API
/// (shared-object puppet saving `array` and `t`, yielding to consumers).
pub const HENSON_PRODUCER: &str = r#"#include <stdio.h>
#include <stdlib.h>
#include <unistd.h>
#include <time.h>
#include <mpi.h>
#include <henson/data.h>
#include <henson/context.h>

int main(int argc, char** argv)
{
    MPI_Init(&argc, &argv);

    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    size_t n = 50;
    if (argc > 1) n = atoi(argv[1]);
    if (rank == 0) printf("Using %zu random numbers\n", n);

    int iterations = 3;
    if (argc > 2) iterations = atoi(argv[2]);

    int sleep_interval = 0;
    if (argc > 3) sleep_interval = atoi(argv[3]);

    srand(time(NULL) + rank);

    int t;
    for (t = 0; t < iterations; ++t) {
        if (sleep_interval) sleep(sleep_interval);

        float* array = (float*) malloc(n * sizeof(float));
        size_t i;
        for (i = 0; i < n; ++i) array[i] = (float) rand() / (float) RAND_MAX;

        float sum = 0;
        for (i = 0; i < n; ++i) sum += array[i];
        printf("[%d] Simulation [t=%d]: sum = %f\n", rank, t, sum);

        float total_sum;
        MPI_Reduce(&sum, &total_sum, 1, MPI_FLOAT, MPI_SUM, 0, MPI_COMM_WORLD);
        if (rank == 0)
            printf("[%d] Simulation [t=%d]: total_sum = %f\n", rank, t, total_sum);

        henson_save_array("array", array, sizeof(float), n, sizeof(float));
        henson_save_int("t", t);
        henson_yield();

        free(array);
    }

    MPI_Finalize();
    return 0;
}
"#;

/// Python producer annotated as a Parsl app (future-based execution, no
/// explicit executor configuration — the default config suffices).
pub const PARSL_PRODUCER: &str = r#"import random
import sys
import time

import parsl
from parsl import python_app


@python_app
def produce(n, iterations, sleep_interval, outfile):
    """Emulate an HPC simulation producing one array per timestep."""
    import random
    import time

    for t in range(iterations):
        if sleep_interval:
            time.sleep(sleep_interval)

        array = [random.random() for _ in range(n)]
        total = sum(array)
        print(f"Simulation [t={t}]: sum = {total}")

        with open(outfile, "w") as f:
            f.write(" ".join(str(x) for x in array))

    return outfile


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    sleep_interval = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    parsl.load()

    future = produce(n, iterations, sleep_interval, "output.txt")
    future.result()


if __name__ == "__main__":
    main()
"#;

/// Python producer annotated as a PyCOMPSs task (file-based dependency via
/// `FILE_OUT` and synchronisation with `compss_wait_on_file`).
pub const PYCOMPSS_PRODUCER: &str = r#"import random
import sys
import time

from pycompss.api.task import task
from pycompss.api.parameter import FILE_OUT
from pycompss.api.api import compss_wait_on_file


@task(outfile=FILE_OUT)
def produce(n, iterations, sleep_interval, outfile):
    """Emulate an HPC simulation producing one array per timestep."""
    for t in range(iterations):
        if sleep_interval:
            time.sleep(sleep_interval)

        array = [random.random() for _ in range(n)]
        total = sum(array)
        print(f"Simulation [t={t}]: sum = {total}")

        with open(outfile, "w") as f:
            f.write(" ".join(str(x) for x in array))

    return outfile


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    sleep_interval = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    produce(n, iterations, sleep_interval, "output.txt")
    compss_wait_on_file("output.txt")


if __name__ == "__main__":
    main()
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_codemodel::{calls::call_names, extract_decorators, lexer::Language};

    #[test]
    fn adios2_reference_uses_real_adios2_calls() {
        let names = call_names(ADIOS2_PRODUCER, Language::C);
        for required in [
            "adios2_init_mpi",
            "adios2_declare_io",
            "adios2_define_variable",
            "adios2_open",
            "adios2_begin_step",
            "adios2_put",
            "adios2_end_step",
            "adios2_close",
            "adios2_finalize",
        ] {
            assert!(names.contains(&required.to_string()), "missing {required}");
        }
    }

    #[test]
    fn adios2_reference_keeps_original_simulation_logic() {
        assert!(ADIOS2_PRODUCER.contains("MPI_Reduce"));
        assert!(ADIOS2_PRODUCER.contains("total_sum"));
        assert!(ADIOS2_PRODUCER.contains("rand()"));
    }

    #[test]
    fn henson_reference_uses_real_henson_calls_only() {
        let names = call_names(HENSON_PRODUCER, Language::C);
        assert!(names.contains(&"henson_save_array".to_string()));
        assert!(names.contains(&"henson_save_int".to_string()));
        assert!(names.contains(&"henson_yield".to_string()));
        // The hallucinated calls the paper highlights must not appear in the
        // ground truth.
        assert!(!names.contains(&"henson_put".to_string()));
        assert!(!names.contains(&"henson_declare_variable".to_string()));
        assert!(!names.contains(&"henson_data_init".to_string()));
    }

    #[test]
    fn parsl_reference_has_app_decorator_and_load() {
        let decorators = extract_decorators(PARSL_PRODUCER);
        assert!(decorators.iter().any(|d| d.name == "python_app"));
        let names = call_names(PARSL_PRODUCER, Language::Python);
        assert!(names.iter().any(|n| n == "load"));
        assert!(names.iter().any(|n| n == "result"));
        // No executor boilerplate in the reference (the paper counts it as
        // redundant).
        assert!(!PARSL_PRODUCER.contains("HighThroughputExecutor"));
        assert!(!PARSL_PRODUCER.contains("Config("));
    }

    #[test]
    fn pycompss_reference_has_task_decorator_and_wait_on_file() {
        let decorators = extract_decorators(PYCOMPSS_PRODUCER);
        assert!(decorators.iter().any(|d| d.name == "task" && d.has_args));
        let names = call_names(PYCOMPSS_PRODUCER, Language::Python);
        assert!(names.contains(&"compss_wait_on_file".to_string()));
        assert!(PYCOMPSS_PRODUCER.contains("FILE_OUT"));
    }

    #[test]
    fn python_references_do_not_mix_systems() {
        assert!(!PARSL_PRODUCER.contains("pycompss"));
        assert!(!PYCOMPSS_PRODUCER.contains("parsl"));
        assert!(!PYCOMPSS_PRODUCER.contains("@python_app"));
    }

    #[test]
    fn c_references_do_not_mix_systems() {
        assert!(!ADIOS2_PRODUCER.contains("henson"));
        assert!(!HENSON_PRODUCER.contains("adios2"));
    }
}
