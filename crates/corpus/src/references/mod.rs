//! Reference (ground-truth) artifacts the LLM outputs are scored against.
//!
//! * [`configs`] — workflow configuration files for the 3-node
//!   producer/consumer workflow (Table 1 / Table 6), plus the 2-node
//!   exemplars used for few-shot prompting (Table 5).
//! * [`annotated`] — producer task codes annotated with each workflow
//!   system's API (Table 2), which also serve as the translation targets
//!   (Table 3).

pub mod annotated;
pub mod configs;

use crate::WorkflowSystemId;

/// The reference configuration file for the paper's 3-node workflow.
/// Only the systems in the configuration experiment have one.
pub fn configuration_reference(system: WorkflowSystemId) -> Option<&'static str> {
    match system {
        WorkflowSystemId::Wilkins => Some(configs::WILKINS_3NODE),
        WorkflowSystemId::Adios2 => Some(configs::ADIOS2_3NODE),
        WorkflowSystemId::Henson => Some(configs::HENSON_3NODE),
        WorkflowSystemId::Parsl | WorkflowSystemId::PyCompss => None,
    }
}

/// The reference annotated producer code for `system`; `None` for Wilkins,
/// which requires no task-code changes.
pub fn annotation_reference(system: WorkflowSystemId) -> Option<&'static str> {
    match system {
        WorkflowSystemId::Adios2 => Some(annotated::ADIOS2_PRODUCER),
        WorkflowSystemId::Henson => Some(annotated::HENSON_PRODUCER),
        WorkflowSystemId::Parsl => Some(annotated::PARSL_PRODUCER),
        WorkflowSystemId::PyCompss => Some(annotated::PYCOMPSS_PRODUCER),
        WorkflowSystemId::Wilkins => None,
    }
}

/// The reference for translating a producer task code into `target`
/// (identical to the target's annotation reference).
pub fn translation_reference(target: WorkflowSystemId) -> Option<&'static str> {
    annotation_reference(target)
}

/// The reference artifact the dynamic-execution grid reconstructs a
/// [`crate::WorkflowSystemId`]-specific workflow spec from: the configuration
/// file where one exists, and the annotated producer code for Parsl and
/// PyCOMPSs (whose config files describe the environment, not the graph).
/// Every system has one.
pub fn execution_reference(system: WorkflowSystemId) -> &'static str {
    configuration_reference(system)
        .or_else(|| annotation_reference(system))
        .expect("every system has a configuration or annotation reference")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configuration_references_cover_table1_systems() {
        for sys in WorkflowSystemId::configuration_systems() {
            assert!(
                configuration_reference(sys).is_some(),
                "{sys} missing config reference"
            );
        }
        assert!(configuration_reference(WorkflowSystemId::Parsl).is_none());
        assert!(configuration_reference(WorkflowSystemId::PyCompss).is_none());
    }

    #[test]
    fn annotation_references_cover_table2_systems() {
        for sys in WorkflowSystemId::annotation_systems() {
            assert!(
                annotation_reference(sys).is_some(),
                "{sys} missing annotation reference"
            );
        }
        assert!(annotation_reference(WorkflowSystemId::Wilkins).is_none());
    }

    #[test]
    fn execution_references_cover_every_system() {
        for sys in WorkflowSystemId::execution_systems() {
            assert!(!execution_reference(sys).is_empty(), "{sys}");
        }
        // Config systems execute their configuration reference; the Python
        // systems execute their annotated producer.
        assert_eq!(
            execution_reference(WorkflowSystemId::Wilkins),
            configuration_reference(WorkflowSystemId::Wilkins).unwrap()
        );
        assert_eq!(
            execution_reference(WorkflowSystemId::Parsl),
            annotation_reference(WorkflowSystemId::Parsl).unwrap()
        );
        assert_eq!(
            execution_reference(WorkflowSystemId::PyCompss),
            annotation_reference(WorkflowSystemId::PyCompss).unwrap()
        );
    }

    #[test]
    fn translation_reference_equals_annotation_reference() {
        for sys in WorkflowSystemId::annotation_systems() {
            assert_eq!(translation_reference(sys), annotation_reference(sys));
        }
    }
}
