//! User prompts for the three experiments, in the five variants used by the
//! prompt-sensitivity study (Section 4.4).

use crate::references::annotated;
use crate::task_codes;
use crate::WorkflowSystemId;

/// The five prompting strategies of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PromptVariant {
    /// The paper's original prompt wording.
    #[default]
    Original,
    /// Extra technical detail (names concrete API calls).
    Detailed,
    /// Different register/style ("Developer, please ...").
    DifferentStyle,
    /// Paraphrased wording.
    Paraphrased,
    /// Reordered sentences.
    Reordered,
}

impl PromptVariant {
    /// All variants in the order Figure 1 lists them.
    pub const ALL: [PromptVariant; 5] = [
        PromptVariant::Original,
        PromptVariant::Detailed,
        PromptVariant::DifferentStyle,
        PromptVariant::Paraphrased,
        PromptVariant::Reordered,
    ];

    /// Row label used in the Figure 1 heatmaps.
    pub fn label(&self) -> &'static str {
        match self {
            PromptVariant::Original => "original",
            PromptVariant::Detailed => "detailed",
            PromptVariant::DifferentStyle => "different-style",
            PromptVariant::Paraphrased => "paraphrased",
            PromptVariant::Reordered => "reordered",
        }
    }
}

impl std::fmt::Display for PromptVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Detail snippets naming concrete API constructs, used by the `Detailed`
/// variant (mirroring the paper's "Annotate ... with ADIOS2 calls (like
/// DefineVariable, Put, BeginStep, EndStep)").
fn api_hint(system: WorkflowSystemId) -> &'static str {
    match system {
        WorkflowSystemId::Adios2 => "(like DefineVariable, Put, BeginStep, EndStep)",
        WorkflowSystemId::Henson => "(like henson_save_array, henson_save_int, henson_yield)",
        WorkflowSystemId::Parsl => "(like the @python_app decorator, parsl.load, and futures)",
        WorkflowSystemId::PyCompss => {
            "(like the @task decorator, FILE_OUT parameters, and compss_wait_on_file)"
        }
        WorkflowSystemId::Wilkins => "(tasks with func, nprocs, inports, outports and dsets)",
    }
}

/// The workflow-configuration request (Section 3.3 / Table 1).  The scenario
/// is fixed: 3-node workflow, producer with grid and particles outputs on 3
/// processes, two single-process consumers.
pub fn configuration_prompt(system: WorkflowSystemId, variant: PromptVariant) -> String {
    let sys = system.name();
    match variant {
        PromptVariant::Original => format!(
            "I would like to have a 3-node workflow consisting of one producer and two consumer \
             tasks, where producer generates grid and particles datasets, consumer1 reads grid \
             and consumer2 reads particles datasets. Producer requires 3 processes, and each \
             consumer runs on a single process. Please provide the workflow configuration file \
             for the {sys} workflow system."
        ),
        PromptVariant::Detailed => format!(
            "Please write the {sys} workflow configuration file {hint} for a 3-node workflow: a \
             producer task running on 3 processes that generates the grid and particles \
             datasets, a consumer1 task on 1 process that reads grid, and a consumer2 task on 1 \
             process that reads particles.",
            hint = api_hint(system)
        ),
        PromptVariant::DifferentStyle => format!(
            "Developer, please produce the configuration file for the {sys} workflow system. The \
             workflow has three nodes: one producer (3 processes) creating grid and particles \
             datasets, and two consumers (1 process each) where the first reads grid and the \
             second reads particles. Ensure every data requirement is declared."
        ),
        PromptVariant::Paraphrased => format!(
            "I have a workflow with a producer and two consumers that I want to describe for the \
             {sys} system. The producer creates two datasets called grid and particles and needs \
             3 processes; consumer1 takes grid and consumer2 takes particles, each on one \
             process. Could you write the corresponding workflow configuration file?"
        ),
        PromptVariant::Reordered => format!(
            "Please provide the workflow configuration file for the {sys} workflow system. The \
             workflow consists of 3 nodes: one producer and two consumer tasks. Producer \
             requires 3 processes and generates grid and particles datasets; consumer1 reads \
             grid and consumer2 reads particles, each running on a single process."
        ),
    }
}

/// The task-code-annotation request (Section 3.3 / Table 2).  The producer
/// task code for the system's language is appended below the instructions.
pub fn annotation_prompt(system: WorkflowSystemId, variant: PromptVariant) -> String {
    let sys = system.name();
    let code = task_codes::producer_for(system);
    let instruction = match variant {
        PromptVariant::Original => format!(
            "You are assisting in the development of a simple producer-consumer workflow using \
             the {sys} system. The producer task code is provided below. Annotate this task code \
             in order to use it with the {sys} system."
        ),
        PromptVariant::Detailed => format!(
            "Annotate the producer task code below with {sys} calls {hint} to enable it to run \
             as part of a {sys} workflow.",
            hint = api_hint(system)
        ),
        PromptVariant::DifferentStyle => format!(
            "Developer, please take the following producer task code and annotate it for \
             compatibility with the {sys} system in a producer-consumer workflow. Ensure all \
             necessary {sys} functions for data handling are included."
        ),
        PromptVariant::Paraphrased => format!(
            "I have some code for a producer task that I want to integrate into a \
             producer-consumer workflow using {sys}. Could you please go through the code \
             provided below and add the necessary {sys} annotations?"
        ),
        PromptVariant::Reordered => format!(
            "Below is the producer task code for a simple producer-consumer workflow. Using the \
             {sys} system, please annotate this code to enable its use within the workflow."
        ),
    };
    format!("{instruction}\n\n```\n{code}```\n")
}

/// The task-code-translation request (Section 3.3 / Table 3).  The annotated
/// producer code of the source system is appended below the instructions.
pub fn translation_prompt(
    source: WorkflowSystemId,
    target: WorkflowSystemId,
    variant: PromptVariant,
) -> String {
    let src = source.name();
    let dst = target.name();
    let code = annotated_producer(source);
    let instruction = match variant {
        PromptVariant::Original => format!(
            "Task codes are provided below for the {src} workflow system for a 2-node workflow. \
             Your task is to translate these codes to use the {dst} system."
        ),
        PromptVariant::Detailed => format!(
            "Translate the {src} producer task code below into the {dst} workflow system, \
             replacing every {src} API call with the equivalent {dst} call {hint}.",
            hint = api_hint(target)
        ),
        PromptVariant::DifferentStyle => format!(
            "Developer, please port the following {src} producer task code so that it runs under \
             the {dst} workflow system instead. Keep the simulation logic unchanged and swap the \
             workflow API calls."
        ),
        PromptVariant::Paraphrased => format!(
            "I have producer task code written for {src} and I would like the same workflow to \
             run with {dst}. Could you translate the code below accordingly?"
        ),
        PromptVariant::Reordered => format!(
            "Please translate these codes to use the {dst} system. The task codes below are \
             written for the {src} workflow system as part of a 2-node workflow."
        ),
    };
    format!("{instruction}\n\n```\n{code}```\n")
}

/// The prompt whose responses the dynamic-execution grid runs on the engine.
/// Configuration systems reuse the configuration request (their artifacts
/// describe the graph directly); Parsl and PyCOMPSs reuse the annotation
/// request, because their workflow structure lives in annotated task code
/// rather than a configuration file.
pub fn execution_prompt(system: WorkflowSystemId, variant: PromptVariant) -> String {
    match system {
        WorkflowSystemId::Parsl | WorkflowSystemId::PyCompss => annotation_prompt(system, variant),
        _ => configuration_prompt(system, variant),
    }
}

/// The annotated producer used as translation source material.
pub fn annotated_producer(system: WorkflowSystemId) -> &'static str {
    match system {
        WorkflowSystemId::Adios2 => annotated::ADIOS2_PRODUCER,
        WorkflowSystemId::Henson => annotated::HENSON_PRODUCER,
        WorkflowSystemId::Parsl => annotated::PARSL_PRODUCER,
        WorkflowSystemId::PyCompss => annotated::PYCOMPSS_PRODUCER,
        WorkflowSystemId::Wilkins => task_codes::C_PRODUCER,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_configuration_prompt_matches_paper_wording() {
        let p = configuration_prompt(WorkflowSystemId::Wilkins, PromptVariant::Original);
        assert!(p.contains("3-node workflow"));
        assert!(p.contains("producer generates grid and particles"));
        assert!(p.contains("Producer requires 3 processes"));
        assert!(p.contains("Wilkins workflow system"));
    }

    #[test]
    fn all_variants_distinct_for_each_experiment() {
        for sys in WorkflowSystemId::configuration_systems() {
            let prompts: Vec<String> = PromptVariant::ALL
                .iter()
                .map(|v| configuration_prompt(sys, *v))
                .collect();
            let mut unique = prompts.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), prompts.len(), "duplicate variants for {sys}");
        }
    }

    #[test]
    fn annotation_prompt_embeds_task_code() {
        let p = annotation_prompt(WorkflowSystemId::Adios2, PromptVariant::Original);
        assert!(p.contains("ADIOS2 system"));
        assert!(p.contains("MPI_Init"));
        assert!(p.contains("```"));
        let py = annotation_prompt(WorkflowSystemId::Parsl, PromptVariant::Original);
        assert!(py.contains("def produce("));
    }

    #[test]
    fn detailed_annotation_prompt_names_api_calls() {
        let p = annotation_prompt(WorkflowSystemId::Adios2, PromptVariant::Detailed);
        assert!(p.contains("DefineVariable"));
        assert!(p.contains("BeginStep"));
        let h = annotation_prompt(WorkflowSystemId::Henson, PromptVariant::Detailed);
        assert!(h.contains("henson_save_int"));
    }

    #[test]
    fn translation_prompt_embeds_source_annotated_code() {
        let p = translation_prompt(
            WorkflowSystemId::Adios2,
            WorkflowSystemId::Henson,
            PromptVariant::Original,
        );
        assert!(p.contains("ADIOS2 workflow system"));
        assert!(p.contains("translate these codes to use the Henson system"));
        assert!(p.contains("adios2_put"));
    }

    #[test]
    fn variant_labels_match_figure1_rows() {
        let labels: Vec<&str> = PromptVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec![
                "original",
                "detailed",
                "different-style",
                "paraphrased",
                "reordered"
            ]
        );
    }

    #[test]
    fn execution_prompts_route_python_systems_to_annotation() {
        for sys in WorkflowSystemId::execution_systems() {
            let prompt = execution_prompt(sys, PromptVariant::Original);
            if sys.uses_python_tasks() {
                assert_eq!(prompt, annotation_prompt(sys, PromptVariant::Original));
            } else {
                assert_eq!(prompt, configuration_prompt(sys, PromptVariant::Original));
            }
        }
    }

    #[test]
    fn annotated_producer_covers_all_systems() {
        for sys in WorkflowSystemId::ALL {
            assert!(!annotated_producer(sys).is_empty());
        }
    }
}
