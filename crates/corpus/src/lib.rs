//! `wfspeak-corpus` — the benchmark's data: task codes, reference
//! (ground-truth) artifacts, user prompts and few-shot exemplars.
//!
//! The paper's three experiments all start from the same small
//! producer/consumer scenario:
//!
//! * a **producer** task emulating an HPC simulation (C for ADIOS2/Henson,
//!   Python for Parsl/PyCOMPSs) that generates a random array per timestep,
//!   reduces it over MPI and publishes it;
//! * one or two **consumer** tasks reading the published data;
//! * a **workflow configuration** describing the graph (Wilkins YAML,
//!   ADIOS2 YAML, Henson script).
//!
//! Everything an experiment needs is exposed as plain strings plus small
//! lookup helpers keyed by [`WorkflowSystemId`] so the rest of the workspace
//! (systems models, simulated LLMs, the harness) shares one single source of
//! truth for references.
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_corpus::prompts::{configuration_prompt, PromptVariant};
//! use wfspeak_corpus::references::configuration_reference;
//! use wfspeak_corpus::WorkflowSystemId;
//!
//! let system = WorkflowSystemId::Wilkins;
//! let prompt = configuration_prompt(system, PromptVariant::Original);
//! assert!(prompt.contains("Wilkins"));
//!
//! // The ground-truth artifact the generated configuration is scored against.
//! let reference = configuration_reference(system).unwrap();
//! assert!(!reference.is_empty());
//! assert_eq!(WorkflowSystemId::from_name("wilkins"), Some(system));
//! ```

pub mod fewshot;
pub mod prompts;
pub mod references;
pub mod task_codes;

/// The five workflow systems evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkflowSystemId {
    /// ADIOS2 I/O middleware used as a workflow coupling layer.
    Adios2,
    /// Henson cooperative multitasking in situ system.
    Henson,
    /// Parsl Python parallel scripting library.
    Parsl,
    /// PyCOMPSs task-based programming model.
    PyCompss,
    /// Wilkins in situ workflow system.
    Wilkins,
}

impl WorkflowSystemId {
    /// All systems, in the paper's table order.
    pub const ALL: [WorkflowSystemId; 5] = [
        WorkflowSystemId::Adios2,
        WorkflowSystemId::Henson,
        WorkflowSystemId::Parsl,
        WorkflowSystemId::PyCompss,
        WorkflowSystemId::Wilkins,
    ];

    /// Display name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            WorkflowSystemId::Adios2 => "ADIOS2",
            WorkflowSystemId::Henson => "Henson",
            WorkflowSystemId::Parsl => "Parsl",
            WorkflowSystemId::PyCompss => "PyCOMPSs",
            WorkflowSystemId::Wilkins => "Wilkins",
        }
    }

    /// Parse a display name back into an id (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        let lower = name.to_ascii_lowercase();
        Some(match lower.as_str() {
            "adios2" | "adios" => WorkflowSystemId::Adios2,
            "henson" => WorkflowSystemId::Henson,
            "parsl" => WorkflowSystemId::Parsl,
            "pycompss" | "compss" => WorkflowSystemId::PyCompss,
            "wilkins" => WorkflowSystemId::Wilkins,
            _ => return None,
        })
    }

    /// Systems included in the workflow-configuration experiment (the paper
    /// excludes Parsl and PyCOMPSs whose config files describe the execution
    /// environment rather than the workflow structure).
    pub fn configuration_systems() -> Vec<WorkflowSystemId> {
        vec![
            WorkflowSystemId::Adios2,
            WorkflowSystemId::Henson,
            WorkflowSystemId::Wilkins,
        ]
    }

    /// Systems included in the task-code-annotation experiment (Wilkins is
    /// excluded because it requires no task code changes).
    pub fn annotation_systems() -> Vec<WorkflowSystemId> {
        vec![
            WorkflowSystemId::Adios2,
            WorkflowSystemId::Henson,
            WorkflowSystemId::PyCompss,
            WorkflowSystemId::Parsl,
        ]
    }

    /// Systems included in the dynamic-execution grid: all five.  The three
    /// configuration systems reconstruct workflow specs from their config
    /// files; Parsl and PyCOMPSs reconstruct them from annotated task code
    /// (`@python_app` dataflow and `@task` parameter directions), so the
    /// whole paper grid is execution-validated.
    pub fn execution_systems() -> Vec<WorkflowSystemId> {
        vec![
            WorkflowSystemId::Adios2,
            WorkflowSystemId::Henson,
            WorkflowSystemId::Parsl,
            WorkflowSystemId::PyCompss,
            WorkflowSystemId::Wilkins,
        ]
    }

    /// Whether task codes for this system are written in Python (true) or C
    /// (false).
    pub fn uses_python_tasks(&self) -> bool {
        matches!(self, WorkflowSystemId::Parsl | WorkflowSystemId::PyCompss)
    }
}

impl std::fmt::Display for WorkflowSystemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Translation pairs evaluated in the task-code-translation experiment
/// (Table 3), in the paper's row order.
pub fn translation_pairs() -> Vec<(WorkflowSystemId, WorkflowSystemId)> {
    vec![
        (WorkflowSystemId::Henson, WorkflowSystemId::Adios2),
        (WorkflowSystemId::Adios2, WorkflowSystemId::Henson),
        (WorkflowSystemId::Parsl, WorkflowSystemId::PyCompss),
        (WorkflowSystemId::PyCompss, WorkflowSystemId::Parsl),
    ]
}

/// Display label for a translation pair as used in Table 3 rows.
pub fn translation_pair_label(source: WorkflowSystemId, target: WorkflowSystemId) -> String {
    format!("{} to {}", source.name(), target.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_names_round_trip() {
        for sys in WorkflowSystemId::ALL {
            assert_eq!(WorkflowSystemId::from_name(sys.name()), Some(sys));
        }
        assert_eq!(WorkflowSystemId::from_name("unknown"), None);
        assert_eq!(
            WorkflowSystemId::from_name("wilkins"),
            Some(WorkflowSystemId::Wilkins)
        );
    }

    #[test]
    fn configuration_systems_match_paper_table1() {
        let systems = WorkflowSystemId::configuration_systems();
        assert_eq!(systems.len(), 3);
        assert!(!systems.contains(&WorkflowSystemId::Parsl));
        assert!(!systems.contains(&WorkflowSystemId::PyCompss));
    }

    #[test]
    fn annotation_systems_match_paper_table2() {
        let systems = WorkflowSystemId::annotation_systems();
        assert_eq!(systems.len(), 4);
        assert!(!systems.contains(&WorkflowSystemId::Wilkins));
    }

    #[test]
    fn translation_pairs_match_paper_table3() {
        let pairs = translation_pairs();
        assert_eq!(pairs.len(), 4);
        assert_eq!(
            translation_pair_label(pairs[0].0, pairs[0].1),
            "Henson to ADIOS2"
        );
        assert_eq!(
            translation_pair_label(pairs[3].0, pairs[3].1),
            "PyCOMPSs to Parsl"
        );
    }

    #[test]
    fn execution_systems_cover_the_whole_grid() {
        let systems = WorkflowSystemId::execution_systems();
        assert_eq!(systems.len(), 5);
        for sys in WorkflowSystemId::ALL {
            assert!(systems.contains(&sys), "{sys} missing from execution grid");
        }
    }

    #[test]
    fn python_task_systems() {
        assert!(WorkflowSystemId::Parsl.uses_python_tasks());
        assert!(WorkflowSystemId::PyCompss.uses_python_tasks());
        assert!(!WorkflowSystemId::Adios2.uses_python_tasks());
        assert!(!WorkflowSystemId::Henson.uses_python_tasks());
        assert!(!WorkflowSystemId::Wilkins.uses_python_tasks());
    }
}
