//! Calibrated knowledge profiles of the simulated models.
//!
//! Each `(model, task, system)` cell carries a *degradation level* in
//! `[0, 1]`: 0 means the model reliably produces the reference artifact,
//! 1 means it produces something structurally wrong.  The values below are
//! calibrated against the paper's Tables 1–3 so that, once the degradation
//! operators of [`crate::degrade`] are applied and the result is scored with
//! BLEU/ChrF, the benchmark reproduces the paper's orderings: ADIOS2 and
//! PyCOMPSs artifacts come out best, Henson and Wilkins worst, Gemini-2.5-Pro
//! and Claude-Sonnet-4 lead the configuration experiment, LLaMA-3.3-70B
//! collapses on PyCOMPSs annotation, and so on.
//!
//! The profiles also carry per-model *prompt sensitivity* (how much the
//! wording of the prompt shifts the level — Figure 1) and *sampling noise*
//! (trial-to-trial variance — the ± standard errors in every table).

use wfspeak_corpus::WorkflowSystemId;

use crate::request::TaskKind;
use crate::ModelId;

/// How strongly a model reacts to prompt wording and sampling noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorProfile {
    /// Maximum shift of the degradation level due to prompt wording.
    pub prompt_sensitivity: f64,
    /// Maximum shift of the degradation level due to per-trial sampling.
    pub sampling_noise: f64,
    /// Residual degradation under few-shot prompting (how well the model
    /// exploits the provided example).
    pub few_shot_floor: f64,
    /// Probability of wrapping the answer in markdown fences with prose.
    pub verbosity: f64,
}

/// Per-model behavioural profile.
pub fn behavior(model: ModelId) -> BehaviorProfile {
    match model {
        ModelId::O3 => BehaviorProfile {
            prompt_sensitivity: 0.08,
            sampling_noise: 0.05,
            few_shot_floor: 0.05,
            verbosity: 0.6,
        },
        ModelId::Gemini25Pro => BehaviorProfile {
            prompt_sensitivity: 0.09,
            sampling_noise: 0.05,
            few_shot_floor: 0.07,
            verbosity: 0.7,
        },
        ModelId::ClaudeSonnet4 => BehaviorProfile {
            prompt_sensitivity: 0.10,
            sampling_noise: 0.01,
            few_shot_floor: 0.03,
            verbosity: 0.8,
        },
        ModelId::Llama33_70B => BehaviorProfile {
            prompt_sensitivity: 0.12,
            sampling_noise: 0.03,
            few_shot_floor: 0.09,
            verbosity: 0.4,
        },
    }
}

/// Degradation level for a `(model, task)` cell, calibrated against the
/// paper's Tables 1–3.  Lower is better.
pub fn degradation_level(model: ModelId, task: &TaskKind) -> f64 {
    use ModelId::*;
    use WorkflowSystemId::*;
    match task {
        TaskKind::Configuration { system } => match (model, system) {
            // Table 1: ADIOS2 well known, Henson barely, Wilkins in between.
            (O3, Adios2) => 0.38,
            (Gemini25Pro, Adios2) => 0.24,
            (ClaudeSonnet4, Adios2) => 0.25,
            (Llama33_70B, Adios2) => 0.58,
            (O3, Henson) => 0.80,
            (Gemini25Pro, Henson) => 0.74,
            (ClaudeSonnet4, Henson) => 0.76,
            // LLaMA's Henson/Wilkins levels sit clear of the Moderate-tier
            // boundary (0.60) so prompt-wording and sampling shifts cannot
            // promote it into a better tier than the paper's Table 1 shows
            // (LLaMA trails Gemini and Claude overall).
            (Llama33_70B, Henson) => 0.82,
            (O3, Wilkins) => 0.68,
            (Gemini25Pro, Wilkins) => 0.66,
            (ClaudeSonnet4, Wilkins) => 0.62,
            (Llama33_70B, Wilkins) => 0.74,
            // Parsl / PyCOMPSs are excluded from the experiment; a request
            // would still be answered, poorly.
            (_, Parsl) | (_, PyCompss) => 0.7,
        },
        TaskKind::Annotation { system } => match (model, system) {
            // Table 2.
            (O3, Adios2) => 0.37,
            (Gemini25Pro, Adios2) => 0.46,
            (ClaudeSonnet4, Adios2) => 0.68,
            (Llama33_70B, Adios2) => 0.44,
            (O3, Henson) => 0.60,
            (Gemini25Pro, Henson) => 0.55,
            (ClaudeSonnet4, Henson) => 0.58,
            (Llama33_70B, Henson) => 0.90,
            (O3, PyCompss) => 0.26,
            (Gemini25Pro, PyCompss) => 0.10,
            (ClaudeSonnet4, PyCompss) => 0.34,
            (Llama33_70B, PyCompss) => 0.97,
            (O3, Parsl) => 0.58,
            (Gemini25Pro, Parsl) => 0.62,
            (ClaudeSonnet4, Parsl) => 0.61,
            (Llama33_70B, Parsl) => 0.56,
            (_, Wilkins) => 0.2, // no annotation needed; nearly trivial
        },
        TaskKind::Translation { target, source } => {
            // Table 3: translation tracks the target-system annotation but is
            // slightly harder because two systems are involved.
            let base = degradation_level(model, &TaskKind::Annotation { system: *target });
            let cross_penalty = match (model, source, target) {
                // o3 is notably strong at Henson→ADIOS2 and weak at
                // ADIOS2→Henson (Table 3).
                (O3, Henson, Adios2) => -0.02,
                (O3, Adios2, Henson) => 0.20,
                (Gemini25Pro, Adios2, Henson) => 0.08,
                (Gemini25Pro, Parsl, PyCompss) => 0.04,
                (Llama33_70B, Adios2, Henson) => 0.10,
                (Llama33_70B, Parsl, PyCompss) => 0.02,
                (ClaudeSonnet4, Henson, Adios2) => 0.10,
                (ClaudeSonnet4, Adios2, Henson) => 0.08,
                _ => 0.16,
            };
            (base + cross_penalty).clamp(0.02, 0.97)
        }
        TaskKind::Unknown => 0.9,
    }
}

/// Adjust a base level for prompt wording, few-shot context and sampling
/// noise.  `wording_fingerprint` comes from the request analysis; `seed`
/// identifies the trial.
pub fn effective_level(
    model: ModelId,
    base: f64,
    wording_fingerprint: u64,
    few_shot: bool,
    seed: u64,
    temperature: f64,
) -> f64 {
    let profile = behavior(model);
    // Prompt-wording shift: a deterministic value in [-1, 1] derived from the
    // fingerprint and the model (different models prefer different wordings —
    // the paper finds no universally best prompt).
    let mix = wording_fingerprint ^ (model as u64).wrapping_mul(0x9e3779b97f4a7c15);
    let wording_unit = ((splitmix(mix) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    let wording_shift = wording_unit * profile.prompt_sensitivity;

    // Sampling noise per trial, scaled by temperature (o3 ignores it).
    let noise_scale = if model.supports_sampling_params() {
        profile.sampling_noise * (temperature / 0.2).clamp(0.0, 5.0)
    } else {
        profile.sampling_noise
    };
    let trial_mix = splitmix(seed ^ mix.rotate_left(17));
    let trial_unit = ((trial_mix >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    let trial_shift = trial_unit * noise_scale;

    let mut level = base + wording_shift + trial_shift;
    if few_shot {
        // The worked example collapses the level towards the model's
        // few-shot floor (Table 5's large uplift).
        level = profile.few_shot_floor + trial_unit.abs() * 0.04;
    }
    level.clamp(0.0, 1.0)
}

/// SplitMix64 — cheap deterministic hash used for the shifts above.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(system: WorkflowSystemId) -> TaskKind {
        TaskKind::Configuration { system }
    }

    fn annotation(system: WorkflowSystemId) -> TaskKind {
        TaskKind::Annotation { system }
    }

    #[test]
    fn configuration_adios2_is_best_known_and_henson_worst() {
        // Per model, ADIOS2 configuration is always better known than Henson
        // (true for every column of Table 1).
        for model in ModelId::ALL {
            let adios2 = degradation_level(model, &config(WorkflowSystemId::Adios2));
            let henson = degradation_level(model, &config(WorkflowSystemId::Henson));
            assert!(adios2 < henson, "{model}: ADIOS2 should beat Henson");
        }
        // Averaged over models (the paper's Overall column): ADIOS2 best,
        // Henson worst, Wilkins in between.
        let mean = |system| {
            ModelId::ALL
                .iter()
                .map(|m| degradation_level(*m, &config(system)))
                .sum::<f64>()
                / 4.0
        };
        assert!(mean(WorkflowSystemId::Adios2) < mean(WorkflowSystemId::Wilkins));
        assert!(mean(WorkflowSystemId::Wilkins) < mean(WorkflowSystemId::Henson));
    }

    #[test]
    fn gemini_and_claude_lead_configuration() {
        // Overall (mean over the three systems), Gemini/Claude < o3 and LLaMA.
        let overall = |model| {
            [
                WorkflowSystemId::Adios2,
                WorkflowSystemId::Henson,
                WorkflowSystemId::Wilkins,
            ]
            .iter()
            .map(|s| degradation_level(model, &config(*s)))
            .sum::<f64>()
                / 3.0
        };
        assert!(overall(ModelId::Gemini25Pro) < overall(ModelId::O3));
        assert!(overall(ModelId::ClaudeSonnet4) < overall(ModelId::O3));
        assert!(overall(ModelId::Gemini25Pro) < overall(ModelId::Llama33_70B));
    }

    #[test]
    fn pycompss_annotation_is_geminis_best_and_llamas_worst() {
        let gem = degradation_level(
            ModelId::Gemini25Pro,
            &annotation(WorkflowSystemId::PyCompss),
        );
        let llama = degradation_level(
            ModelId::Llama33_70B,
            &annotation(WorkflowSystemId::PyCompss),
        );
        assert!(gem < 0.2);
        assert!(llama > 0.8);
    }

    #[test]
    fn translation_is_harder_than_annotation_on_average() {
        let mut annotation_sum = 0.0;
        let mut translation_sum = 0.0;
        let mut n = 0.0;
        for model in ModelId::ALL {
            for (source, target) in wfspeak_corpus::translation_pairs() {
                annotation_sum += degradation_level(model, &annotation(target));
                translation_sum +=
                    degradation_level(model, &TaskKind::Translation { source, target });
                n += 1.0;
            }
        }
        assert!(translation_sum / n > annotation_sum / n);
    }

    #[test]
    fn o3_translation_asymmetry_matches_paper() {
        let henson_to_adios2 = degradation_level(
            ModelId::O3,
            &TaskKind::Translation {
                source: WorkflowSystemId::Henson,
                target: WorkflowSystemId::Adios2,
            },
        );
        let adios2_to_henson = degradation_level(
            ModelId::O3,
            &TaskKind::Translation {
                source: WorkflowSystemId::Adios2,
                target: WorkflowSystemId::Henson,
            },
        );
        assert!(henson_to_adios2 < adios2_to_henson);
    }

    #[test]
    fn few_shot_collapses_level_for_every_model() {
        for model in ModelId::ALL {
            for system in WorkflowSystemId::configuration_systems() {
                let base = degradation_level(model, &config(system));
                for seed in 0..5 {
                    let zero_shot = effective_level(model, base, 12345, false, seed, 0.2);
                    let few_shot = effective_level(model, base, 12345, true, seed, 0.2);
                    assert!(
                        few_shot < zero_shot.min(0.3),
                        "{model}/{system}: few-shot {few_shot} should beat zero-shot {zero_shot}"
                    );
                    assert!(few_shot < 0.2);
                }
            }
        }
    }

    #[test]
    fn effective_level_is_deterministic() {
        let a = effective_level(ModelId::O3, 0.5, 42, false, 3, 0.2);
        let b = effective_level(ModelId::O3, 0.5, 42, false, 3, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn effective_level_varies_with_wording_and_seed() {
        let base = 0.5;
        let by_wording: Vec<f64> = (0..6)
            .map(|w| effective_level(ModelId::ClaudeSonnet4, base, w * 7919, false, 0, 0.2))
            .collect();
        let distinct = by_wording
            .iter()
            .map(|v| (v * 1e6) as i64)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "wording should shift the level");

        let by_seed: Vec<f64> = (0..6)
            .map(|s| effective_level(ModelId::Gemini25Pro, base, 1, false, s, 0.2))
            .collect();
        let distinct_seeds = by_seed
            .iter()
            .map(|v| (v * 1e6) as i64)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct_seeds.len() > 1, "seed should shift the level");
    }

    #[test]
    fn effective_level_stays_in_unit_interval() {
        for model in ModelId::ALL {
            for base in [0.0, 0.3, 0.7, 1.0] {
                for seed in 0..10 {
                    let level = effective_level(model, base, seed * 31, false, seed, 0.2);
                    assert!((0.0..=1.0).contains(&level));
                }
            }
        }
    }

    #[test]
    fn unknown_task_is_heavily_degraded() {
        assert!(degradation_level(ModelId::O3, &TaskKind::Unknown) > 0.8);
    }
}
