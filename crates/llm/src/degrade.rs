//! Degradation operators: turn a ground-truth artifact into the kind of
//! output an imperfectly informed model produces.
//!
//! The operators encode the paper's observed failure modes:
//!
//! * configuration: hallucinated fields (`inputs`, `outputs`, `command`,
//!   `dependencies`), wrong format (YAML for a Henson script, XML for an
//!   ADIOS2 YAML config), or answering with task code instead of a
//!   configuration file;
//! * annotation / translation: nonexistent API calls (`henson_put`,
//!   `henson_declare_variable`, `henson_data_init`), missing required calls
//!   (`compss_wait_on_file`), redundant boilerplate (unrequested Parsl
//!   executors), or mechanically renaming the source system's API instead of
//!   translating it (LLaMA in Table 4, left).
//!
//! How much damage is applied is controlled by a *degradation level* in
//! `[0, 1]`, quantised into five tiers.

use rand::rngs::StdRng;
use rand::Rng;

use wfspeak_corpus::references::{annotated, configs};
use wfspeak_corpus::{task_codes, WorkflowSystemId};

use crate::ModelId;

/// Quality tiers derived from a degradation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Essentially the reference.
    Exact,
    /// Minor deviations (cosmetic edits, a dropped optional field).
    Minor,
    /// Moderate problems (renamed fields, one hallucination, omissions).
    Moderate,
    /// Structurally wrong but still the right kind of artifact.
    Poor,
    /// The wrong kind of artifact (task code instead of a config, an
    /// unannotated or mechanically renamed program).
    Wrong,
}

/// Map a level to a tier.
pub fn tier(level: f64) -> Tier {
    match level {
        l if l < 0.15 => Tier::Exact,
        l if l < 0.35 => Tier::Minor,
        l if l < 0.60 => Tier::Moderate,
        l if l < 0.80 => Tier::Poor,
        _ => Tier::Wrong,
    }
}

/// Generate a (possibly degraded) configuration file for `system`.
pub fn degrade_config(
    system: WorkflowSystemId,
    level: f64,
    model: ModelId,
    rng: &mut StdRng,
) -> String {
    let reference = match system {
        WorkflowSystemId::Wilkins => configs::WILKINS_3NODE,
        WorkflowSystemId::Adios2 => configs::ADIOS2_3NODE,
        WorkflowSystemId::Henson => configs::HENSON_3NODE,
        // Parsl / PyCOMPSs have no workflow-structure config; an LLM asked
        // anyway produces an executor / project file sketch.
        WorkflowSystemId::Parsl => {
            return parsl_environment_config_sketch();
        }
        WorkflowSystemId::PyCompss => {
            return pycompss_environment_config_sketch();
        }
    };
    match tier(level) {
        Tier::Exact => reference.to_owned(),
        Tier::Minor => minor_config_edits(reference, system, rng),
        Tier::Moderate => moderate_config_edits(reference, system, rng),
        Tier::Poor => poor_config_rewrite(system, model, rng),
        Tier::Wrong => wrong_artifact_for_config(system, rng),
    }
}

/// Generate a (possibly degraded) annotated/translated task code whose
/// target system is `target`.  `source` is set for translation requests and
/// enables the mechanical-rename failure mode.
pub fn degrade_code(
    target: WorkflowSystemId,
    source: Option<WorkflowSystemId>,
    level: f64,
    model: ModelId,
    rng: &mut StdRng,
) -> String {
    let reference = match target {
        WorkflowSystemId::Adios2 => annotated::ADIOS2_PRODUCER,
        WorkflowSystemId::Henson => annotated::HENSON_PRODUCER,
        WorkflowSystemId::Parsl => annotated::PARSL_PRODUCER,
        WorkflowSystemId::PyCompss => annotated::PYCOMPSS_PRODUCER,
        WorkflowSystemId::Wilkins => task_codes::C_PRODUCER,
    };
    // The stylistic divergence from the reference grows continuously with
    // the level, so small level differences (e.g. translation being slightly
    // harder than annotation) show up in the scores even within a tier.
    let intensity = (level * 1.2).clamp(0.0, 1.0);
    match tier(level) {
        Tier::Exact => reference.to_owned(),
        Tier::Minor => {
            let text = minor_code_edits(reference, rng);
            style_rewrite(&text, target.uses_python_tasks(), intensity, rng)
        }
        Tier::Moderate => {
            let text = moderate_code_edits(reference, target, model, rng);
            style_rewrite(&text, target.uses_python_tasks(), intensity, rng)
        }
        Tier::Poor => {
            let text = poor_code_edits(reference, target, model, rng);
            style_rewrite(&text, target.uses_python_tasks(), intensity, rng)
        }
        Tier::Wrong => wrong_code(target, source, model, rng),
    }
}

/// Replace whole-identifier occurrences of `from` with `to` (no partial-word
/// replacements, no changes inside other identifiers).
fn rename_identifier(text: &str, from: &str, to: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut i = 0;
    while i < bytes.len() {
        if text[i..].starts_with(from) {
            let before_ok = i == 0 || !is_ident(bytes[i - 1]);
            let after = i + from.len();
            let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
            if before_ok && after_ok {
                out.push_str(to);
                i = after;
                continue;
            }
        }
        // Advance one UTF-8 character.
        let ch_len = text[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        out.push_str(&text[i..i + ch_len]);
        i += ch_len;
    }
    out
}

/// Pervasive but plausible stylistic divergence from the reference: a model
/// that "knows" the right API rarely reproduces the reference word for word.
/// Renames local identifiers (never API calls), drops comments and blank
/// lines, and reworks log strings; `intensity` in [0, 1] controls how much.
fn style_rewrite(text: &str, python: bool, intensity: f64, rng: &mut StdRng) -> String {
    let renames: &[(&str, &str)] = if python {
        &[
            ("array", "values"),
            ("total", "checksum"),
            ("n", "num_values"),
            ("iterations", "num_steps"),
            ("sleep_interval", "delay"),
            ("outfile", "output_path"),
            ("infile", "input_path"),
            ("produce", "run_producer"),
            ("t", "step"),
        ]
    } else {
        &[
            ("total_sum", "global_sum"),
            ("array", "data"),
            ("sum", "local_sum"),
            ("engine", "writer"),
            ("iterations", "num_steps"),
            ("sleep_interval", "delay"),
            ("i", "idx"),
            ("rank", "world_rank"),
            ("size", "world_size"),
            ("t", "step"),
        ]
    };
    let count = ((renames.len() as f64) * intensity).round() as usize;
    let mut out = text.to_owned();
    for (from, to) in renames.iter().take(count) {
        if rng.gen_bool(0.9) {
            out = rename_identifier(&out, from, to);
        }
    }
    if intensity >= 0.5 {
        // Drop comments and collapse blank lines: models rarely carry the
        // user's comments through verbatim.
        let comment_prefix = if python { "#" } else { "/*" };
        out = out
            .lines()
            .filter(|l| {
                let trimmed = l.trim_start();
                (!trimmed.starts_with(comment_prefix) || trimmed.starts_with("#include"))
                    && !trimmed.starts_with("//")
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
    }
    if intensity >= 0.5 && rng.gen_bool(0.7) {
        out = out.replace("Simulation [t=", "simulation step ");
        out = out.replace("Using %zu random numbers", "Generating %zu random values");
        out = out.replace("Using {n} random numbers", "Generating {n} random values");
    }
    if intensity >= 0.55 {
        // Models frequently drop the logging, sleep throttling, seeding and
        // command-line parsing of the original code when rewriting it.
        out = out
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                !(t.contains("printf(")
                    || t.starts_with("print(")
                    || t.contains("sleep(")
                    || t.contains("sleep_interval") && t.contains("argv")
                    || t.contains("srand(")
                    || t.contains("argc >")
                    || t.contains("sys.argv"))
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
    }
    if intensity >= 0.8 {
        // Heavier structural loss: the MPI reduction disappears too.
        out = out
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                !(t.contains("MPI_Reduce")
                    || t.contains("total_sum")
                    || t.contains("global_sum")
                    || t.starts_with("if (rank == 0)")
                    || t.starts_with("if (world_rank == 0)"))
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
    }
    if intensity >= 0.9 {
        out = out
            .lines()
            .filter(|l| !l.trim().is_empty())
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
    }
    out
}

// ---------------------------------------------------------------------------
// Configuration degradations
// ---------------------------------------------------------------------------

fn minor_config_edits(reference: &str, system: WorkflowSystemId, rng: &mut StdRng) -> String {
    let mut text = reference.to_owned();
    match system {
        WorkflowSystemId::Wilkins => {
            if rng.gen_bool(0.5) {
                text = text.replace("outfile.h5", "output.h5");
            }
            if rng.gen_bool(0.5) {
                // Dropping the `file:` flags keeps the config valid but
                // deviates from the reference text.
                text = text
                    .lines()
                    .filter(|l| !l.trim_start().starts_with("file:"))
                    .collect::<Vec<_>>()
                    .join("\n")
                    + "\n";
            }
        }
        WorkflowSystemId::Adios2 => {
            if rng.gen_bool(0.5) {
                text = text.replace("QueueLimit: 1", "QueueLimit: 5");
            }
            if rng.gen_bool(0.5) {
                text = text.replace("RendezvousReaderCount: 1\n    QueueLimit: 1\n", "");
            }
        }
        WorkflowSystemId::Henson => {
            if rng.gen_bool(0.5) {
                text = text.replace("./producer.so 50 3", "./producer.so 100 3");
            }
            if rng.gen_bool(0.5) {
                text = text.replace("consumer_particles.so", "consumer2.so");
            }
        }
        _ => {}
    }
    text
}

fn moderate_config_edits(reference: &str, system: WorkflowSystemId, rng: &mut StdRng) -> String {
    match system {
        WorkflowSystemId::Wilkins => {
            let mut text = reference.to_owned();
            // Field renamings that do not exist in Wilkins.
            text = text.replace("nprocs:", "procs:");
            if rng.gen_bool(0.6) {
                text = text.replace("func:", "name:");
            }
            if rng.gen_bool(0.5) {
                text = text.replace("dsets:", "datasets:");
                text = text.replace("outports:", "outputs:");
                text = text.replace("inports:", "inputs:");
            }
            // Drop the per-dataset placement flags.
            if rng.gen_bool(0.6) {
                text = text
                    .lines()
                    .filter(|l| {
                        let t = l.trim_start();
                        !t.starts_with("file:") && !t.starts_with("memory:")
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
                    + "\n";
            }
            // Forget one of the dataset blocks.
            if rng.gen_bool(0.6) {
                text = text.replace(
                    "          - name: /group1/particles\n            file: 0\n            memory: 1\n  - func: consumer1",
                    "  - func: consumer1",
                );
                text = text.replace("/group1/particles", "particles");
                text = text.replace("/group1/grid", "grid");
            }
            if rng.gen_bool(0.5) {
                text = text.replace("outfile.h5", "data.h5");
            }
            text
        }
        WorkflowSystemId::Adios2 => {
            let mut text = reference.to_owned();
            if rng.gen_bool(0.7) {
                // Drop the reader IOs entirely.
                if let Some(pos) = text.find("- IO: GridReader") {
                    text.truncate(pos);
                }
            }
            if rng.gen_bool(0.6) {
                text = text.replace("Variables:", "variables:");
                text = text.replace("Variable:", "name:");
                text = text.replace("Shape:", "shape:");
                text = text.replace("Type: float", "type: float");
            }
            if rng.gen_bool(0.5) {
                text = text.replace("Type: SST", "Type: InSituMPI");
            }
            if rng.gen_bool(0.5) {
                text = text.replace("    RendezvousReaderCount: 1\n    QueueLimit: 1\n", "");
                text = text.replace("- IO: GridStream", "- IO: SimulationOutput");
                text = text.replace("- IO: ParticlesStream", "- IO: SimulationParticles");
            }
            text
        }
        WorkflowSystemId::Henson => {
            let mut text = reference.to_owned();
            // Forget the process-group lines: the script no longer says
            // where tasks run.
            text = text
                .lines()
                .filter(|l| !l.trim_start().starts_with('['))
                .collect::<Vec<_>>()
                .join("\n")
                + "\n";
            if rng.gen_bool(0.6) {
                // Drift towards a `key: value` pseudo-YAML syntax.
                text = text.replace(" = ", ": ");
                text = text.replace("  =", ":");
            }
            if rng.gen_bool(0.5) {
                text.push_str("\nworld = producer consumer1 consumer2\nprocs = 5\n");
            } else {
                text.push_str("\nschedule:\n  producer: 3\n  consumer1: 1\n  consumer2: 1\n");
            }
            text
        }
        _ => reference.to_owned(),
    }
}

/// Structurally wrong but recognisably a configuration file — the Table 6
/// (right) style output.
fn poor_config_rewrite(system: WorkflowSystemId, model: ModelId, rng: &mut StdRng) -> String {
    match system {
        WorkflowSystemId::Wilkins => {
            let comment = if rng.gen_bool(0.5) {
                "#wilkins_workflow.yaml\n\n"
            } else {
                ""
            };
            format!(
                "{comment}workflow:\n  name: simple_3node_workflow\n  datasets:\n    grid: {{}}\n    particles: {{}}\n  tasks:\n    producer:\n      command: ./producer\n      processes: 3\n      outputs:\n        - grid\n        - particles\n    consumer1:\n      command: ./consumer_grid\n      processes: 1\n      inputs:\n        - grid\n    consumer2:\n      command: ./consumer_particles\n      processes: 1\n      inputs:\n        - particles\n  dependencies:\n    - from: producer\n      to: consumer1\n      datasets:\n        - grid\n    - from: producer\n      to: consumer2\n      datasets:\n        - particles\n"
            )
        }
        WorkflowSystemId::Adios2 => {
            // XML configuration instead of the requested YAML one; valid for
            // ADIOS2 generally but not what the reference uses.
            format!(
                "<?xml version=\"1.0\"?>\n<adios-config>\n  <io name=\"SimulationOutput\">\n    <engine type=\"{}\">\n      <parameter key=\"RendezvousReaderCount\" value=\"1\"/>\n    </engine>\n  </io>\n  <io name=\"AnalysisInput\">\n    <engine type=\"SST\"/>\n  </io>\n</adios-config>\n",
                if model == ModelId::Llama33_70B { "BPFile" } else { "SST" }
            )
        }
        WorkflowSystemId::Henson => {
            // YAML instead of a Henson script — the "LLMs struggle to infer
            // what configuration means" failure.
            "workflow:\n  tasks:\n    - name: producer\n      executable: ./producer\n      nprocs: 3\n      outputs: [grid, particles]\n    - name: consumer1\n      executable: ./consumer_grid\n      nprocs: 1\n      inputs: [grid]\n    - name: consumer2\n      executable: ./consumer_particles\n      nprocs: 1\n      inputs: [particles]\n".to_owned()
        }
        _ => String::new(),
    }
}

/// The wrong kind of artifact entirely: a task-code snippet instead of a
/// configuration file (a failure mode the paper reports explicitly).
fn wrong_artifact_for_config(system: WorkflowSystemId, rng: &mut StdRng) -> String {
    let snippet = match system {
        WorkflowSystemId::Henson => {
            "// Henson workflow setup\n#include <henson/context.h>\n\nint main(int argc, char** argv)\n{\n    while (henson_active())\n    {\n        simulate();\n        henson_yield();\n    }\n    return 0;\n}\n"
        }
        WorkflowSystemId::Adios2 => {
            "// ADIOS2 workflow setup\nadios2::ADIOS adios(MPI_COMM_WORLD);\nadios2::IO io = adios.DeclareIO(\"SimulationOutput\");\nadios2::Engine engine = io.Open(\"output.bp\", adios2::Mode::Write);\n"
        }
        _ => {
            "def build_workflow():\n    producer = Task(\"producer\", procs=3, outputs=[\"grid\", \"particles\"])\n    consumer1 = Task(\"consumer1\", procs=1, inputs=[\"grid\"])\n    consumer2 = Task(\"consumer2\", procs=1, inputs=[\"particles\"])\n    return Workflow([producer, consumer1, consumer2])\n"
        }
    };
    if rng.gen_bool(0.5) {
        format!(
            "To set up this workflow you can use the following snippet instead of a configuration file.\n\n{snippet}"
        )
    } else {
        snippet.to_owned()
    }
}

fn parsl_environment_config_sketch() -> String {
    "from parsl.config import Config\nfrom parsl.executors import HighThroughputExecutor\n\nconfig = Config(\n    executors=[HighThroughputExecutor(label=\"htex\", max_workers=5)],\n)\n".to_owned()
}

fn pycompss_environment_config_sketch() -> String {
    "<Project>\n  <MasterNode/>\n  <ComputeNode Name=\"localhost\">\n    <InstallDir>/opt/COMPSs/</InstallDir>\n    <WorkingDir>/tmp/</WorkingDir>\n  </ComputeNode>\n</Project>\n".to_owned()
}

// ---------------------------------------------------------------------------
// Code degradations
// ---------------------------------------------------------------------------

fn minor_code_edits(reference: &str, rng: &mut StdRng) -> String {
    let mut text = reference.to_owned();
    if rng.gen_bool(0.5) {
        text = text.replace("output.bp", "simulation_output.bp");
        text = text.replace("output.txt", "producer_output.txt");
    }
    if rng.gen_bool(0.5) {
        text = text.replace("    float sum = 0;", "    float sum = 0.0f;");
        text = text.replace("    total = sum(array)", "    total = float(sum(array))");
    }
    if rng.gen_bool(0.4) {
        // A harmless extra comment.
        text = text.replace(
            "int main(int argc, char** argv)",
            "/* producer task for the workflow */\nint main(int argc, char** argv)",
        );
    }
    text
}

/// Model-specific hallucinated substitutions for each target system.
fn hallucination_substitutions(
    target: WorkflowSystemId,
    model: ModelId,
) -> Vec<(&'static str, &'static str)> {
    match (target, model) {
        (WorkflowSystemId::Henson, ModelId::O3) => vec![
            ("henson_save_array(\"array\", array, sizeof(float), n, sizeof(float));", "henson_put(\"array\", array, n);"),
            ("henson_save_int(\"t\", t);", "henson_put(\"t\", &t);"),
        ],
        (WorkflowSystemId::Henson, ModelId::Gemini25Pro) => vec![
            (
                "henson_save_array(\"array\", array, sizeof(float), n, sizeof(float));",
                "henson_data_t array_hd;\n        henson_data_init(&array_hd, HENSON_FLOAT, n, array);\n        henson_save(\"array\", &array_hd);",
            ),
            (
                "henson_save_int(\"t\", t);",
                "henson_data_t t_hd;\n        henson_data_init_scalar(&t_hd, HENSON_INT, &t);\n        henson_save(\"t\", &t_hd);",
            ),
        ],
        (WorkflowSystemId::Henson, ModelId::ClaudeSonnet4) => vec![
            ("henson_save_int(\"t\", t);", "henson_declare_variable(\"t\", &t);"),
        ],
        (WorkflowSystemId::Henson, ModelId::Llama33_70B) => vec![
            ("henson_save_array(\"array\", array, sizeof(float), n, sizeof(float));", "henson_put_var(output, varArray, array);"),
            ("henson_save_int(\"t\", t);", "henson_put_var(output, varT, &t);"),
        ],
        (WorkflowSystemId::Adios2, ModelId::Llama33_70B) => vec![
            ("adios2_begin_step(engine, adios2_step_mode_append, -1.0, &status);", "adios2_write_begin(engine);"),
        ],
        (WorkflowSystemId::Adios2, _) => vec![
            ("adios2_put(engine, var_t, &t, adios2_mode_deferred);", "adios2_put_scalar(engine, \"t\", &t);"),
        ],
        (WorkflowSystemId::PyCompss, ModelId::Llama33_70B) => vec![
            ("compss_wait_on_file", "compss_barrier_for_file"),
        ],
        (WorkflowSystemId::PyCompss, _) => vec![
            ("compss_wait_on_file", "compss_wait_on"),
        ],
        (WorkflowSystemId::Parsl, _) => vec![
            ("parsl.load()", "parsl.load(config)"),
        ],
        _ => vec![],
    }
}

fn moderate_code_edits(
    reference: &str,
    target: WorkflowSystemId,
    model: ModelId,
    rng: &mut StdRng,
) -> String {
    let mut text = minor_code_edits(reference, rng);
    let substitutions = hallucination_substitutions(target, model);
    // Always apply the model's first (most characteristic) substitution at
    // this tier; sometimes a second one.
    for (i, (from, to)) in substitutions.iter().enumerate() {
        if i == 0 || rng.gen_bool(0.4) {
            text = text.replace(from, to);
        }
    }
    // Redundant Parsl boilerplate: legal, unrequested, hurts BLEU.
    if target == WorkflowSystemId::Parsl && rng.gen_bool(0.7) {
        text = text.replace(
            "import parsl\nfrom parsl import python_app",
            "import parsl\nfrom parsl import python_app\nfrom parsl.config import Config\nfrom parsl.executors import HighThroughputExecutor\n\nconfig = Config(\n    executors=[HighThroughputExecutor(label=\"htex_local\", max_workers=4)],\n)",
        );
        text = text.replace("parsl.load()", "parsl.load(config)");
    }
    // Occasionally forget the required synchronisation call entirely
    // (LLaMA's characteristic PyCOMPSs mistake).
    if target == WorkflowSystemId::PyCompss && model == ModelId::Llama33_70B && rng.gen_bool(0.6) {
        text = text
            .lines()
            .filter(|l| !l.contains("wait_on_file") && !l.contains("barrier_for_file"))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
    }
    text
}

fn poor_code_edits(
    reference: &str,
    target: WorkflowSystemId,
    model: ModelId,
    rng: &mut StdRng,
) -> String {
    let mut text = minor_code_edits(reference, rng);
    // Apply every model-specific hallucination.
    for (from, to) in hallucination_substitutions(target, model) {
        text = text.replace(from, to);
    }
    match target {
        WorkflowSystemId::Henson => {
            // Invent an init/finalize lifecycle (Table 4, right) and switch
            // the timestep loop to an invented `while (henson_active())`
            // structure, dropping the iteration-count handling.
            text = text.replace(
                "    srand(time(NULL) + rank);",
                "    srand(time(NULL) + rank);\n\n    henson_init(argc, argv, MPI_COMM_WORLD);",
            );
            text = text.replace(
                "    MPI_Finalize();",
                "    henson_finalize();\n\n    MPI_Finalize();",
            );
            text = text.replace(
                "    int t;\n    for (t = 0; t < iterations; ++t) {",
                "    int t = 0;\n    while (henson_active())\n    {",
            );
            text = text.replace(
                "        free(array);\n    }",
                "        free(array);\n        t++;\n    }",
            );
            text = text.replace(
                "    int iterations = 3;\n    if (argc > 2) iterations = atoi(argv[2]);\n\n",
                "",
            );
            if rng.gen_bool(0.5) {
                text = text.replace("    int rank, size;\n    MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n    MPI_Comm_size(MPI_COMM_WORLD, &size);", "    int rank = henson_rank();\n    int size = henson_size();");
            }
        }
        WorkflowSystemId::Adios2 => {
            text = text.replace(
                "adios2_adios* adios = adios2_init_mpi(MPI_COMM_WORLD);",
                "adios2_adios* adios = adios2_init(MPI_COMM_WORLD, adios2_debug_mode_on);",
            );
            if rng.gen_bool(0.5) {
                text = text.replace(
                    "adios2_end_step(engine);",
                    "adios2_flush(engine);\n        adios2_end_step(engine);",
                );
            }
        }
        WorkflowSystemId::PyCompss => {
            text = text.replace("from pycompss.api.parameter import FILE_OUT\n", "");
            text = text.replace("@task(outfile=FILE_OUT)", "@task(returns=1)");
            if rng.gen_bool(0.5) {
                text = text.replace(
                    "    compss_wait_on_file(\"output.txt\")\n",
                    "    compss_barrier()\n",
                );
            }
        }
        WorkflowSystemId::Parsl => {
            text = text.replace("@python_app\n", "@parsl_app\n");
            if rng.gen_bool(0.5) {
                text = text.replace("    future.result()\n", "");
            }
        }
        WorkflowSystemId::Wilkins => {}
    }
    let _ = model;
    text
}

/// Entirely wrong output: unannotated code, or — for translation — a
/// mechanical rename of the source system's API (Table 4, left).
fn wrong_code(
    target: WorkflowSystemId,
    source: Option<WorkflowSystemId>,
    model: ModelId,
    rng: &mut StdRng,
) -> String {
    if let Some(source) = source {
        // Mechanical rename of the source API into the target's prefix.
        let source_code = match source {
            WorkflowSystemId::Adios2 => annotated::ADIOS2_PRODUCER,
            WorkflowSystemId::Henson => annotated::HENSON_PRODUCER,
            WorkflowSystemId::Parsl => annotated::PARSL_PRODUCER,
            WorkflowSystemId::PyCompss => annotated::PYCOMPSS_PRODUCER,
            WorkflowSystemId::Wilkins => task_codes::C_PRODUCER,
        };
        let renamed = match (source, target) {
            (WorkflowSystemId::Adios2, WorkflowSystemId::Henson) => source_code
                .replace("adios2_c.h", "henson.h")
                .replace("adios2_adios", "henson_t")
                .replace("adios2_io", "henson_stage_t")
                .replace("adios2_variable", "henson_var_t")
                .replace("adios2_engine", "henson_output_t")
                .replace("adios2_init_mpi", "henson_init")
                .replace("adios2_declare_io", "henson_declare_stage")
                .replace("adios2_define_variable", "henson_declare_var")
                .replace("adios2_open", "henson_open_output")
                .replace("adios2_begin_step", "henson_begin_step")
                .replace("adios2_put", "henson_put_var")
                .replace("adios2_end_step", "henson_end_step")
                .replace("adios2_close", "henson_close_output")
                .replace("adios2_finalize", "henson_finalize")
                .replace("adios2_type_float", "HENSON_FLOAT")
                .replace("adios2_type_int32_t", "HENSON_INT"),
            (WorkflowSystemId::Henson, WorkflowSystemId::Adios2) => source_code
                .replace("henson/data.h", "adios2_c.h")
                .replace("henson/context.h", "adios2_c.h")
                .replace("henson_save_array", "adios2_save_array")
                .replace("henson_save_int", "adios2_save_int")
                .replace("henson_yield", "adios2_yield"),
            (WorkflowSystemId::Parsl, WorkflowSystemId::PyCompss) => source_code
                .replace(
                    "import parsl\nfrom parsl import python_app",
                    "from pycompss import compss_app",
                )
                .replace("@python_app", "@compss_app")
                .replace("parsl.load()", "compss_start()")
                .replace("future.result()", "compss_wait(future)"),
            (WorkflowSystemId::PyCompss, WorkflowSystemId::Parsl) => source_code
                .replace(
                    "from pycompss.api.task import task",
                    "from parsl import task",
                )
                .replace("from pycompss.api.parameter import FILE_OUT\n", "")
                .replace(
                    "from pycompss.api.api import compss_wait_on_file",
                    "from parsl import parsl_wait_on_file",
                )
                .replace("@task(outfile=FILE_OUT)", "@task()")
                .replace("compss_wait_on_file", "parsl_wait_on_file"),
            _ => source_code.to_owned(),
        };
        let _ = model;
        // The renamed program also drifts heavily in style (Table 4 left is
        // a whole rewritten file, not a diff of the reference).
        return style_rewrite(&renamed, target.uses_python_tasks(), 0.85, rng);
    }
    // Annotation request answered with a skeletal rewrite that throws away
    // most of the provided code — the kind of output behind the paper's
    // single-digit BLEU cells (e.g. LLaMA-3.3-70B on PyCOMPSs).
    let _ = model;
    let todo = if rng.gen_bool(0.5) {
        "fill in the simulation logic here"
    } else {
        "generate the data and publish it for the consumer"
    };
    if target.uses_python_tasks() {
        let decorator = if target == WorkflowSystemId::PyCompss {
            "from pycompss.api.task import task\n\n\n@task()"
        } else {
            "import parsl\nfrom parsl import python_app\n\n\n@python_app"
        };
        format!(
            "{decorator}\ndef producer(n):\n    # {todo}\n    data = [0.0] * n\n    return data\n\n\nproducer(50)\n"
        )
    } else {
        let header = if target == WorkflowSystemId::Henson {
            "#include <henson/data.h>"
        } else {
            "#include <adios2_c.h>"
        };
        format!(
            "#include <mpi.h>\n{header}\n\nint main(int argc, char** argv)\n{{\n    MPI_Init(&argc, &argv);\n\n    /* {todo} */\n\n    MPI_Finalize();\n    return 0;\n}}\n"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wfspeak_metrics::{bleu::BleuScorer, Scorer};
    use wfspeak_systems::system_for;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn tier_boundaries() {
        assert_eq!(tier(0.0), Tier::Exact);
        assert_eq!(tier(0.2), Tier::Minor);
        assert_eq!(tier(0.5), Tier::Moderate);
        assert_eq!(tier(0.7), Tier::Poor);
        assert_eq!(tier(0.9), Tier::Wrong);
    }

    #[test]
    fn exact_config_is_the_reference() {
        let out = degrade_config(WorkflowSystemId::Wilkins, 0.05, ModelId::O3, &mut rng(1));
        assert_eq!(out, configs::WILKINS_3NODE);
    }

    #[test]
    fn bleu_decreases_with_degradation_level_for_configs() {
        let scorer = BleuScorer::default();
        for system in WorkflowSystemId::configuration_systems() {
            let reference = match system {
                WorkflowSystemId::Wilkins => configs::WILKINS_3NODE,
                WorkflowSystemId::Adios2 => configs::ADIOS2_3NODE,
                WorkflowSystemId::Henson => configs::HENSON_3NODE,
                _ => unreachable!(),
            };
            let score_at = |level: f64| {
                let out = degrade_config(system, level, ModelId::Gemini25Pro, &mut rng(7));
                scorer.score(&out, reference)
            };
            let exact = score_at(0.05);
            let moderate = score_at(0.5);
            let wrong = score_at(0.9);
            assert!(exact > moderate, "{system}: {exact} vs {moderate}");
            assert!(moderate > wrong, "{system}: {moderate} vs {wrong}");
            assert!(exact > 99.0);
            assert!(wrong < 30.0, "{system}: wrong tier scored {wrong}");
        }
    }

    #[test]
    fn poor_wilkins_rewrite_has_hallucinated_fields() {
        let out = degrade_config(WorkflowSystemId::Wilkins, 0.7, ModelId::O3, &mut rng(3));
        assert!(out.contains("command:"));
        assert!(out.contains("inputs:"));
        assert!(out.contains("dependencies:"));
        let report = system_for(WorkflowSystemId::Wilkins).validate_config(&out);
        assert!(!report.is_valid());
    }

    #[test]
    fn wrong_tier_config_is_code_not_yaml() {
        let out = degrade_config(WorkflowSystemId::Henson, 0.9, ModelId::O3, &mut rng(4));
        assert!(out.contains("henson_") || out.contains("int main") || out.contains("Task("));
    }

    #[test]
    fn exact_code_is_the_reference() {
        let out = degrade_code(
            WorkflowSystemId::PyCompss,
            None,
            0.05,
            ModelId::Gemini25Pro,
            &mut rng(5),
        );
        assert_eq!(out, annotated::PYCOMPSS_PRODUCER);
    }

    #[test]
    fn bleu_decreases_with_degradation_level_for_code() {
        let scorer = BleuScorer::default();
        for target in [
            WorkflowSystemId::Adios2,
            WorkflowSystemId::Henson,
            WorkflowSystemId::Parsl,
            WorkflowSystemId::PyCompss,
        ] {
            let reference = match target {
                WorkflowSystemId::Adios2 => annotated::ADIOS2_PRODUCER,
                WorkflowSystemId::Henson => annotated::HENSON_PRODUCER,
                WorkflowSystemId::Parsl => annotated::PARSL_PRODUCER,
                WorkflowSystemId::PyCompss => annotated::PYCOMPSS_PRODUCER,
                _ => unreachable!(),
            };
            let score_at = |level: f64| {
                let out = degrade_code(target, None, level, ModelId::O3, &mut rng(11));
                scorer.score(&out, reference)
            };
            assert!(score_at(0.05) > score_at(0.5), "{target}");
            assert!(score_at(0.5) > score_at(0.95), "{target}");
        }
    }

    #[test]
    fn gemini_poor_henson_code_has_table4_hallucinations() {
        let out = degrade_code(
            WorkflowSystemId::Henson,
            Some(WorkflowSystemId::Adios2),
            0.7,
            ModelId::Gemini25Pro,
            &mut rng(2),
        );
        assert!(out.contains("henson_data_init"));
        assert!(out.contains("henson_yield"));
        let report = system_for(WorkflowSystemId::Henson).validate_task_code(&out);
        assert!(report.has_code("hallucinated-call"));
    }

    #[test]
    fn llama_wrong_translation_is_mechanical_rename() {
        let out = degrade_code(
            WorkflowSystemId::Henson,
            Some(WorkflowSystemId::Adios2),
            0.95,
            ModelId::Llama33_70B,
            &mut rng(2),
        );
        // ADIOS2-style call names with a henson_ prefix, as in Table 4 left.
        assert!(out.contains("henson_begin_step"));
        assert!(out.contains("henson_put_var"));
        assert!(out.contains("henson_end_step"));
        assert!(!out.contains("adios2_begin_step"));
        let report = system_for(WorkflowSystemId::Henson).validate_task_code(&out);
        assert!(report.has_code("hallucinated-call"));
    }

    #[test]
    fn moderate_parsl_code_contains_redundant_executor() {
        let mut any_redundant = false;
        for seed in 0..10 {
            let out = degrade_code(
                WorkflowSystemId::Parsl,
                None,
                0.5,
                ModelId::O3,
                &mut rng(seed),
            );
            if out.contains("HighThroughputExecutor") {
                any_redundant = true;
            }
        }
        assert!(
            any_redundant,
            "redundant executor boilerplate should appear at the moderate tier"
        );
    }

    #[test]
    fn llama_moderate_pycompss_often_drops_wait_on_file() {
        let mut dropped = 0;
        for seed in 0..20 {
            let out = degrade_code(
                WorkflowSystemId::PyCompss,
                None,
                0.5,
                ModelId::Llama33_70B,
                &mut rng(seed),
            );
            if !out.contains("compss_wait_on_file") {
                dropped += 1;
            }
        }
        assert!(dropped > 5, "expected frequent omission, got {dropped}/20");
    }

    #[test]
    fn degradation_is_deterministic_for_a_seed() {
        let a = degrade_code(
            WorkflowSystemId::Henson,
            None,
            0.5,
            ModelId::O3,
            &mut rng(9),
        );
        let b = degrade_code(
            WorkflowSystemId::Henson,
            None,
            0.5,
            ModelId::O3,
            &mut rng(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn environment_config_sketches_for_python_systems() {
        let parsl = degrade_config(WorkflowSystemId::Parsl, 0.1, ModelId::O3, &mut rng(1));
        assert!(parsl.contains("Config("));
        let pycompss = degrade_config(WorkflowSystemId::PyCompss, 0.1, ModelId::O3, &mut rng(1));
        assert!(pycompss.contains("<Project>"));
    }
}
