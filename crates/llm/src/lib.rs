//! `wfspeak-llm` — the language-model layer of the benchmark.
//!
//! The harness only needs one thing from a model: *given a prompt, return a
//! text completion*.  That contract is the [`LlmClient`] trait.  The paper
//! evaluated four hosted models (o3, Gemini-2.5-Pro, Claude-Sonnet-4,
//! LLaMA-3.3-70B); this environment has no network access, so the crate
//! ships [`SimulatedLlm`] — a deterministic, seeded behavioural simulator for
//! each of those models, calibrated so that running the full benchmark over
//! the simulators reproduces the *shape* of the paper's results (which
//! systems and models do better, the failure modes, the few-shot uplift).
//! A real API client can be swapped in by implementing [`LlmClient`] without
//! touching the rest of the workspace.
//!
//! The simulator pipeline per request:
//!
//! 1. [`request`] infers the workflow task (configuration / annotation /
//!    translation), the target system(s) and whether a few-shot exemplar is
//!    present — purely from the prompt text, like a real model would.
//! 2. [`knowledge`] looks up the model's calibrated familiarity with that
//!    (task, system) cell and adjusts it for prompt wording and sampling
//!    noise.
//! 3. [`degrade`] starts from the ground-truth artifact and applies
//!    model-specific degradations (field renamings, hallucinated API calls,
//!    omissions, redundant boilerplate, structural rewrites) proportional to
//!    the model's unfamiliarity.
//! 4. [`models`] wraps the result in the model's response style (markdown
//!    fences, prose preambles).
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_llm::{CompletionRequest, LlmClient, ModelId, SamplingParams, SimulatedLlm};
//!
//! let model = SimulatedLlm::new(ModelId::O3);
//! let request = CompletionRequest::new(
//!     "Generate a Wilkins workflow configuration file for a 3-node workflow.",
//!     SamplingParams::paper_defaults(42),
//! );
//! let response = model.complete(&request);
//! assert!(!response.text.is_empty());
//! // Simulated models are deterministic: same request, same completion.
//! assert_eq!(model.complete(&request).text, response.text);
//! ```

pub mod degrade;
pub mod knowledge;
pub mod models;
pub mod request;

pub use models::SimulatedLlm;
pub use request::{RequestAnalysis, TaskKind};

use wfspeak_corpus::WorkflowSystemId;

/// The four models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// OpenAI o3 (reasoning model; ignores temperature/top-p).
    O3,
    /// Google Gemini-2.5-Pro.
    Gemini25Pro,
    /// Anthropic Claude-Sonnet-4.
    ClaudeSonnet4,
    /// Meta LLaMA-3.3-70B-Instruct.
    Llama33_70B,
}

impl ModelId {
    /// All models, in the paper's column order.
    pub const ALL: [ModelId; 4] = [
        ModelId::O3,
        ModelId::Gemini25Pro,
        ModelId::ClaudeSonnet4,
        ModelId::Llama33_70B,
    ];

    /// Display name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::O3 => "o3",
            ModelId::Gemini25Pro => "Gemini-2.5-Pro",
            ModelId::ClaudeSonnet4 => "Claude-Sonnet-4",
            ModelId::Llama33_70B => "LLaMA-3.3-70B",
        }
    }

    /// Whether the model accepts temperature / top-p sampling parameters
    /// (the paper's footnote: OpenAI's o-series reasoning models do not).
    pub fn supports_sampling_params(&self) -> bool {
        !matches!(self, ModelId::O3)
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sampling parameters sent with a completion request.  The paper uses
/// temperature 0.2 and top-p 0.95 for all models except o3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature.
    pub temperature: f64,
    /// Nucleus-sampling probability mass.
    pub top_p: f64,
    /// Seed controlling the (simulated) stochasticity of one trial.
    pub seed: u64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            temperature: 0.2,
            top_p: 0.95,
            seed: 0,
        }
    }
}

impl SamplingParams {
    /// The paper's standard settings with a specific trial seed.
    pub fn paper_defaults(seed: u64) -> Self {
        SamplingParams {
            seed,
            ..SamplingParams::default()
        }
    }
}

/// A completion request: a prompt plus sampling parameters.
#[derive(Debug, Clone)]
pub struct CompletionRequest {
    /// The full user prompt (instructions plus any embedded code/examples).
    pub prompt: String,
    /// Sampling parameters for this trial.
    pub params: SamplingParams,
}

impl CompletionRequest {
    /// Convenience constructor.
    pub fn new(prompt: impl Into<String>, params: SamplingParams) -> Self {
        CompletionRequest {
            prompt: prompt.into(),
            params,
        }
    }
}

/// A completion response.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionResponse {
    /// The raw model output (possibly markdown-fenced, possibly with prose).
    pub text: String,
    /// Rough output-size proxy: number of whitespace-separated tokens.
    pub output_tokens: usize,
}

impl CompletionResponse {
    /// Wrap raw text in a response.
    pub fn from_text(text: String) -> Self {
        let output_tokens = text.split_whitespace().count();
        CompletionResponse {
            text,
            output_tokens,
        }
    }
}

/// A language model the harness can query.
pub trait LlmClient: Send + Sync {
    /// Which of the paper's models this client stands in for.
    fn model(&self) -> ModelId;

    /// Produce a completion for the request.
    fn complete(&self, request: &CompletionRequest) -> CompletionResponse;
}

/// Look up the system a table row refers to (helper shared by tests and the
/// harness when mapping row labels back to systems).
pub fn system_from_row_label(label: &str) -> Option<WorkflowSystemId> {
    WorkflowSystemId::from_name(label.trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_match_paper_columns() {
        let names: Vec<&str> = ModelId::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["o3", "Gemini-2.5-Pro", "Claude-Sonnet-4", "LLaMA-3.3-70B"]
        );
    }

    #[test]
    fn o3_does_not_take_sampling_params() {
        assert!(!ModelId::O3.supports_sampling_params());
        assert!(ModelId::Gemini25Pro.supports_sampling_params());
        assert!(ModelId::ClaudeSonnet4.supports_sampling_params());
        assert!(ModelId::Llama33_70B.supports_sampling_params());
    }

    #[test]
    fn paper_default_sampling_params() {
        let p = SamplingParams::paper_defaults(3);
        assert!((p.temperature - 0.2).abs() < f64::EPSILON);
        assert!((p.top_p - 0.95).abs() < f64::EPSILON);
        assert_eq!(p.seed, 3);
    }

    #[test]
    fn response_counts_tokens() {
        let r = CompletionResponse::from_text("tasks:\n  - func: producer".to_string());
        assert_eq!(r.output_tokens, 4);
    }

    #[test]
    fn system_from_row_label_parses_table_rows() {
        assert_eq!(
            system_from_row_label("ADIOS2"),
            Some(WorkflowSystemId::Adios2)
        );
        assert_eq!(
            system_from_row_label(" Wilkins "),
            Some(WorkflowSystemId::Wilkins)
        );
        assert_eq!(system_from_row_label("Henson to ADIOS2"), None);
    }
}
