//! Prompt analysis: infer what the user is asking for from the prompt text
//! alone, the way a real model has to.

use wfspeak_corpus::WorkflowSystemId;

/// Which benchmark task a prompt requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Generate a workflow configuration file for a system.
    Configuration {
        /// Target workflow system.
        system: WorkflowSystemId,
    },
    /// Annotate a task code with a system's API.
    Annotation {
        /// Target workflow system.
        system: WorkflowSystemId,
    },
    /// Translate annotated task code from one system to another.
    Translation {
        /// Source workflow system.
        source: WorkflowSystemId,
        /// Target workflow system.
        target: WorkflowSystemId,
    },
    /// The prompt did not look like any benchmark task.
    Unknown,
}

impl TaskKind {
    /// The system whose artifact must be produced (the translation target,
    /// the annotation system, or the configuration system).
    pub fn target_system(&self) -> Option<WorkflowSystemId> {
        match self {
            TaskKind::Configuration { system } | TaskKind::Annotation { system } => Some(*system),
            TaskKind::Translation { target, .. } => Some(*target),
            TaskKind::Unknown => None,
        }
    }
}

/// Everything the simulator extracts from a prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestAnalysis {
    /// The inferred task.
    pub task: TaskKind,
    /// Whether the prompt embeds a worked configuration example (few-shot).
    pub has_few_shot_example: bool,
    /// Whether the prompt embeds task code (annotation/translation prompts
    /// carry the code below the instructions).
    pub has_embedded_code: bool,
    /// A stable fingerprint of the instruction wording, used to model prompt
    /// sensitivity (different variants → different fingerprints).
    pub wording_fingerprint: u64,
}

/// Mentioned systems in prompt order (first mention first).
fn mentioned_systems(prompt: &str) -> Vec<WorkflowSystemId> {
    let lower = prompt.to_ascii_lowercase();
    let mut found: Vec<(usize, WorkflowSystemId)> = Vec::new();
    for sys in WorkflowSystemId::ALL {
        let needle = sys.name().to_ascii_lowercase();
        if let Some(pos) = lower.find(&needle) {
            found.push((pos, sys));
        }
    }
    found.sort_by_key(|(pos, _)| *pos);
    found.into_iter().map(|(_, s)| s).collect()
}

/// Analyse a prompt.
pub fn analyze(prompt: &str) -> RequestAnalysis {
    let lower = prompt.to_ascii_lowercase();
    let systems = mentioned_systems(prompt);
    let has_embedded_code = prompt.contains("```")
        || prompt.contains("#include")
        || prompt.contains("def ")
        || prompt.contains("int main(");
    let has_few_shot_example = lower.contains("example configuration")
        || (lower.contains("example") && lower.contains("2-node"))
        || (has_embedded_code && lower.contains("follow the same structure"));

    let wants_translation = lower.contains("translate") || lower.contains("port the following");
    let wants_configuration = lower.contains("configuration file")
        || lower.contains("workflow configuration")
        || lower.contains("config file");
    let wants_annotation = lower.contains("annotate") || lower.contains("annotations");

    let task = if wants_translation && systems.len() >= 2 {
        // The translation prompts name the source system first ("Task codes
        // are provided below for the X workflow system ... translate these
        // codes to use the Y system"), except the detailed/reordered
        // variants, which we disambiguate by "to use the <target> system" /
        // "into the <target>".
        let target = find_target_of_translation(&lower, &systems);
        let source = systems
            .iter()
            .copied()
            .find(|s| Some(*s) != Some(target))
            .unwrap_or(systems[0]);
        TaskKind::Translation { source, target }
    } else if wants_configuration && !systems.is_empty() && !has_embedded_code {
        TaskKind::Configuration { system: systems[0] }
    } else if wants_annotation && !systems.is_empty() {
        TaskKind::Annotation { system: systems[0] }
    } else if wants_configuration && !systems.is_empty() {
        TaskKind::Configuration { system: systems[0] }
    } else {
        TaskKind::Unknown
    };

    // Fingerprint only the instruction part (before any embedded code),
    // so the same wording with different embedded code hashes identically.
    let instructions: String = prompt
        .split("```")
        .next()
        .unwrap_or(prompt)
        .to_ascii_lowercase();
    let mut fingerprint: u64 = 0xcbf29ce484222325;
    for b in instructions.bytes() {
        fingerprint ^= b as u64;
        fingerprint = fingerprint.wrapping_mul(0x100000001b3);
    }

    RequestAnalysis {
        task,
        has_few_shot_example,
        has_embedded_code,
        wording_fingerprint: fingerprint,
    }
}

fn find_target_of_translation(lower: &str, systems: &[WorkflowSystemId]) -> WorkflowSystemId {
    // Patterns that directly name the target.
    for sys in systems {
        let name = sys.name().to_ascii_lowercase();
        for pattern in [
            format!("to use the {name} system"),
            format!("to use {name}"),
            format!("into the {name} workflow system"),
            format!("into the {name} system"),
            format!("run under the {name} workflow system"),
            format!("run with {name}"),
        ] {
            if lower.contains(&pattern) {
                return *sys;
            }
        }
    }
    // Fall back to the second mentioned system.
    systems.get(1).copied().unwrap_or(systems[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::prompts::{
        annotation_prompt, configuration_prompt, translation_prompt, PromptVariant,
    };
    use wfspeak_corpus::{fewshot, translation_pairs};

    #[test]
    fn configuration_prompts_detected_for_all_variants_and_systems() {
        for sys in WorkflowSystemId::configuration_systems() {
            for variant in PromptVariant::ALL {
                let prompt = configuration_prompt(sys, variant);
                let analysis = analyze(&prompt);
                assert_eq!(
                    analysis.task,
                    TaskKind::Configuration { system: sys },
                    "variant {variant} for {sys}"
                );
                assert!(!analysis.has_few_shot_example);
            }
        }
    }

    #[test]
    fn annotation_prompts_detected_for_all_variants_and_systems() {
        for sys in WorkflowSystemId::annotation_systems() {
            for variant in PromptVariant::ALL {
                let prompt = annotation_prompt(sys, variant);
                let analysis = analyze(&prompt);
                assert_eq!(
                    analysis.task,
                    TaskKind::Annotation { system: sys },
                    "variant {variant} for {sys}"
                );
                assert!(analysis.has_embedded_code);
            }
        }
    }

    #[test]
    fn translation_prompts_detect_source_and_target() {
        for (source, target) in translation_pairs() {
            for variant in PromptVariant::ALL {
                let prompt = translation_prompt(source, target, variant);
                let analysis = analyze(&prompt);
                assert_eq!(
                    analysis.task,
                    TaskKind::Translation { source, target },
                    "variant {variant} for {source}->{target}"
                );
            }
        }
    }

    #[test]
    fn few_shot_augmentation_detected() {
        let base = configuration_prompt(WorkflowSystemId::Wilkins, PromptVariant::Original);
        let aug = fewshot::augment_configuration_prompt(&base, WorkflowSystemId::Wilkins);
        assert!(analyze(&aug).has_few_shot_example);
        assert!(!analyze(&base).has_few_shot_example);
        // Still recognised as a configuration request.
        assert_eq!(
            analyze(&aug).task,
            TaskKind::Configuration {
                system: WorkflowSystemId::Wilkins
            }
        );
    }

    #[test]
    fn wording_fingerprint_differs_per_variant_but_not_per_trial() {
        let a = analyze(&configuration_prompt(
            WorkflowSystemId::Wilkins,
            PromptVariant::Original,
        ));
        let b = analyze(&configuration_prompt(
            WorkflowSystemId::Wilkins,
            PromptVariant::Detailed,
        ));
        let a2 = analyze(&configuration_prompt(
            WorkflowSystemId::Wilkins,
            PromptVariant::Original,
        ));
        assert_ne!(a.wording_fingerprint, b.wording_fingerprint);
        assert_eq!(a.wording_fingerprint, a2.wording_fingerprint);
    }

    #[test]
    fn unrelated_prompt_is_unknown() {
        let analysis = analyze("What is the weather like in St. Louis in November?");
        assert_eq!(analysis.task, TaskKind::Unknown);
        assert_eq!(analysis.task.target_system(), None);
    }

    #[test]
    fn target_system_accessor() {
        assert_eq!(
            TaskKind::Translation {
                source: WorkflowSystemId::Adios2,
                target: WorkflowSystemId::Henson
            }
            .target_system(),
            Some(WorkflowSystemId::Henson)
        );
        assert_eq!(
            TaskKind::Configuration {
                system: WorkflowSystemId::Wilkins
            }
            .target_system(),
            Some(WorkflowSystemId::Wilkins)
        );
    }
}
