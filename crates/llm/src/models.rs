//! The simulated models: one [`SimulatedLlm`] per paper model, all sharing
//! the same pipeline (analyse prompt → look up knowledge → degrade the
//! ground truth → wrap in the model's response style).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wfspeak_corpus::WorkflowSystemId;

use crate::degrade::{degrade_code, degrade_config};
use crate::knowledge::{behavior, degradation_level, effective_level, splitmix};
use crate::request::{analyze, TaskKind};
use crate::{CompletionRequest, CompletionResponse, LlmClient, ModelId};

/// A deterministic behavioural simulator of one of the paper's models.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    model: ModelId,
}

impl SimulatedLlm {
    /// Create a simulator for `model`.
    pub fn new(model: ModelId) -> Self {
        SimulatedLlm { model }
    }

    /// Simulators for all four models, in the paper's column order.
    pub fn all() -> Vec<SimulatedLlm> {
        ModelId::ALL.iter().map(|m| SimulatedLlm::new(*m)).collect()
    }

    fn response_style(&self, body: &str, task: &TaskKind, rng: &mut StdRng) -> String {
        let profile = behavior(self.model);
        if !rng.gen_bool(profile.verbosity) {
            return body.to_owned();
        }
        let language_tag = match task {
            TaskKind::Configuration { system } => match system {
                WorkflowSystemId::Henson => "",
                _ => "yaml",
            },
            TaskKind::Annotation { system } | TaskKind::Translation { target: system, .. } => {
                if system.uses_python_tasks() {
                    "python"
                } else {
                    "c"
                }
            }
            TaskKind::Unknown => "",
        };
        let preamble = match (self.model, task) {
            (ModelId::ClaudeSonnet4, TaskKind::Configuration { system }) => format!(
                "Here is the workflow configuration file for the {} system:",
                system.name()
            ),
            (ModelId::ClaudeSonnet4, _) => "Here is the annotated task code:".to_owned(),
            (ModelId::Gemini25Pro, _) => {
                "Of course. Based on your requirements, here is the result:".to_owned()
            }
            (ModelId::O3, _) => "Below is the requested artifact.".to_owned(),
            (ModelId::Llama33_70B, _) => "Sure! Here you go:".to_owned(),
        };
        let postamble = if rng.gen_bool(0.4) {
            "\nLet me know if you need any adjustments."
        } else {
            ""
        };
        format!("{preamble}\n\n```{language_tag}\n{body}```\n{postamble}")
    }
}

impl LlmClient for SimulatedLlm {
    fn model(&self) -> ModelId {
        self.model
    }

    fn complete(&self, request: &CompletionRequest) -> CompletionResponse {
        let analysis = analyze(&request.prompt);
        let base = degradation_level(self.model, &analysis.task);
        let temperature = if self.model.supports_sampling_params() {
            request.params.temperature
        } else {
            0.2
        };
        let level = effective_level(
            self.model,
            base,
            analysis.wording_fingerprint,
            analysis.has_few_shot_example,
            request.params.seed,
            temperature,
        );
        // One RNG per (model, prompt wording, trial): drives which concrete
        // degradations get applied and the response styling.
        let rng_seed = splitmix(
            request.params.seed ^ analysis.wording_fingerprint ^ ((self.model as u64) << 32),
        );
        let mut rng = StdRng::seed_from_u64(rng_seed);

        let body = match analysis.task {
            TaskKind::Configuration { system } => {
                degrade_config(system, level, self.model, &mut rng)
            }
            TaskKind::Annotation { system } => {
                degrade_code(system, None, level, self.model, &mut rng)
            }
            TaskKind::Translation { source, target } => {
                degrade_code(target, Some(source), level, self.model, &mut rng)
            }
            TaskKind::Unknown => {
                "I could not identify a workflow system or task in this request. Could you \
                 clarify which workflow system you are targeting?"
                    .to_owned()
            }
        };
        let text = self.response_style(&body, &analysis.task, &mut rng);
        CompletionResponse::from_text(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_codemodel::extract_code;
    use wfspeak_corpus::prompts::{
        annotation_prompt, configuration_prompt, translation_prompt, PromptVariant,
    };
    use wfspeak_corpus::references::{annotation_reference, configuration_reference};
    use wfspeak_corpus::{fewshot, WorkflowSystemId};
    use wfspeak_metrics::{bleu::BleuScorer, Scorer};

    fn paper_request(prompt: String, seed: u64) -> CompletionRequest {
        CompletionRequest::new(prompt, crate::SamplingParams::paper_defaults(seed))
    }

    #[test]
    fn all_returns_four_distinct_models() {
        let models = SimulatedLlm::all();
        assert_eq!(models.len(), 4);
        let names: std::collections::HashSet<&str> =
            models.iter().map(|m| m.model().name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn responses_are_deterministic_per_seed_and_vary_across_seeds() {
        let llm = SimulatedLlm::new(ModelId::Gemini25Pro);
        let prompt = configuration_prompt(WorkflowSystemId::Wilkins, PromptVariant::Original);
        let a = llm.complete(&paper_request(prompt.clone(), 1));
        let b = llm.complete(&paper_request(prompt.clone(), 1));
        assert_eq!(a.text, b.text);
        let responses: std::collections::HashSet<String> = (0..5)
            .map(|s| llm.complete(&paper_request(prompt.clone(), s)).text)
            .collect();
        assert!(responses.len() > 1, "trials should not be identical");
    }

    #[test]
    fn configuration_scores_rank_adios2_above_henson_and_wilkins() {
        // The paper's Table 1 Overall column: ADIOS2 is the system LLMs
        // configure best, Henson the one they configure worst.  The three
        // leading models also show the ordering individually.
        let scorer = BleuScorer::default();
        let mean_for = |llm: &SimulatedLlm, system: WorkflowSystemId| {
            let reference = configuration_reference(system).unwrap();
            let mut total = 0.0;
            for seed in 0..5 {
                let prompt = configuration_prompt(system, PromptVariant::Original);
                let response = llm.complete(&paper_request(prompt, seed));
                let code = extract_code(&response.text);
                total += scorer.score(&code, reference);
            }
            total / 5.0
        };
        let mut overall_adios2 = 0.0;
        let mut overall_henson = 0.0;
        let mut overall_wilkins = 0.0;
        for llm in SimulatedLlm::all() {
            let adios2 = mean_for(&llm, WorkflowSystemId::Adios2);
            let henson = mean_for(&llm, WorkflowSystemId::Henson);
            let wilkins = mean_for(&llm, WorkflowSystemId::Wilkins);
            overall_adios2 += adios2 / 4.0;
            overall_henson += henson / 4.0;
            overall_wilkins += wilkins / 4.0;
            if llm.model() != ModelId::Llama33_70B {
                assert!(
                    adios2 > henson,
                    "{}: ADIOS2 config score {adios2} should beat Henson {henson}",
                    llm.model()
                );
            }
        }
        assert!(
            overall_adios2 > overall_wilkins && overall_wilkins > overall_henson,
            "overall ordering ADIOS2 ({overall_adios2:.1}) > Wilkins ({overall_wilkins:.1}) > Henson ({overall_henson:.1}) expected"
        );
        assert!(overall_adios2 > overall_henson + 15.0);
    }

    #[test]
    fn few_shot_prompting_dramatically_improves_wilkins_config() {
        let scorer = BleuScorer::default();
        let reference = configuration_reference(WorkflowSystemId::Wilkins).unwrap();
        for llm in SimulatedLlm::all() {
            let base_prompt =
                configuration_prompt(WorkflowSystemId::Wilkins, PromptVariant::Original);
            let fs_prompt =
                fewshot::augment_configuration_prompt(&base_prompt, WorkflowSystemId::Wilkins);
            let mut zero = 0.0;
            let mut few = 0.0;
            for seed in 0..5 {
                zero += scorer.score(
                    &extract_code(&llm.complete(&paper_request(base_prompt.clone(), seed)).text),
                    reference,
                );
                few += scorer.score(
                    &extract_code(&llm.complete(&paper_request(fs_prompt.clone(), seed)).text),
                    reference,
                );
            }
            zero /= 5.0;
            few /= 5.0;
            assert!(
                few > zero + 20.0,
                "{}: few-shot {few} should be far above zero-shot {zero}",
                llm.model()
            );
            assert!(few > 70.0, "{}: few-shot score {few} too low", llm.model());
        }
    }

    #[test]
    fn pycompss_annotation_is_geminis_strength_and_llamas_weakness() {
        let scorer = BleuScorer::default();
        let reference = annotation_reference(WorkflowSystemId::PyCompss).unwrap();
        let score_for = |model: ModelId| {
            let llm = SimulatedLlm::new(model);
            let mut total = 0.0;
            for seed in 0..5 {
                let prompt = annotation_prompt(WorkflowSystemId::PyCompss, PromptVariant::Original);
                let code = extract_code(&llm.complete(&paper_request(prompt, seed)).text);
                total += scorer.score(&code, reference);
            }
            total / 5.0
        };
        let gemini = score_for(ModelId::Gemini25Pro);
        let llama = score_for(ModelId::Llama33_70B);
        assert!(gemini > 70.0, "Gemini PyCOMPSs annotation {gemini}");
        assert!(llama < 40.0, "LLaMA PyCOMPSs annotation {llama}");
        assert!(gemini > llama + 30.0);
    }

    #[test]
    fn translation_response_targets_the_right_system() {
        let llm = SimulatedLlm::new(ModelId::O3);
        let prompt = translation_prompt(
            WorkflowSystemId::Henson,
            WorkflowSystemId::Adios2,
            PromptVariant::Original,
        );
        let response = llm.complete(&paper_request(prompt, 0));
        let code = extract_code(&response.text);
        assert!(code.contains("adios2_") || code.contains("adios"));
    }

    #[test]
    fn o3_ignores_temperature() {
        let llm = SimulatedLlm::new(ModelId::O3);
        let prompt = configuration_prompt(WorkflowSystemId::Wilkins, PromptVariant::Original);
        let hot = CompletionRequest::new(
            prompt.clone(),
            crate::SamplingParams {
                temperature: 1.5,
                top_p: 0.95,
                seed: 3,
            },
        );
        let cold = CompletionRequest::new(
            prompt,
            crate::SamplingParams {
                temperature: 0.0,
                top_p: 0.95,
                seed: 3,
            },
        );
        assert_eq!(llm.complete(&hot).text, llm.complete(&cold).text);
    }

    #[test]
    fn unknown_prompt_yields_clarification() {
        let llm = SimulatedLlm::new(ModelId::ClaudeSonnet4);
        let response = llm.complete(&paper_request("Tell me a joke about HPC.".into(), 0));
        assert!(response.text.contains("clarify"));
    }

    #[test]
    fn responses_often_wrap_code_in_markdown_fences() {
        let llm = SimulatedLlm::new(ModelId::ClaudeSonnet4);
        let mut fenced = 0;
        for seed in 0..10 {
            let prompt = configuration_prompt(WorkflowSystemId::Adios2, PromptVariant::Original);
            if llm
                .complete(&paper_request(prompt, seed))
                .text
                .contains("```")
            {
                fenced += 1;
            }
        }
        assert!(
            fenced >= 5,
            "expected frequent markdown fencing, got {fenced}/10"
        );
    }
}
