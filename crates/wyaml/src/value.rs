//! The document value model: scalars, sequences and insertion-ordered maps.

use std::fmt;

/// An insertion-ordered map of string keys to values.
///
/// YAML mappings in workflow configuration files are order-sensitive for
/// human readers (and for text-similarity scoring), so keys are kept in the
/// order they were inserted rather than sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Create an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Build a map from entries whose keys are already known to be
    /// distinct, skipping [`Map::insert`]'s duplicate scan.  Used by the
    /// borrowed tree's owned conversion, where the parser has already
    /// rejected duplicate keys.
    pub(crate) fn from_unique_entries(entries: Vec<(String, Value)>) -> Map {
        debug_assert!(
            entries
                .iter()
                .enumerate()
                .all(|(i, (k, _))| entries[..i].iter().all(|(other, _)| other != k)),
            "from_unique_entries requires distinct keys"
        );
        Map { entries }
    }

    /// Insert a key/value pair.  If the key already exists its value is
    /// replaced in place (original position retained).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A parsed YAML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`, `~` or an empty scalar.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// String scalar (plain or quoted).
    Str(String),
    /// Sequence (`- item` or `[a, b]`).
    Seq(Vec<Value>),
    /// Mapping (`key: value` or `{a: 1}`).
    Map(Map),
}

impl Value {
    /// Interpret a plain (unquoted) scalar string, resolving null, booleans
    /// and numbers the way YAML 1.1 core schema does for the common cases.
    pub fn from_plain_scalar(s: &str) -> Value {
        let t = s.trim();
        match t {
            "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
            "true" | "True" | "TRUE" => return Value::Bool(true),
            "false" | "False" | "FALSE" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        // Only treat as float if it looks numeric (avoid "1.0.0" or version
        // strings being mangled).
        if t.parse::<f64>().is_ok()
            && t.chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        {
            if let Ok(f) = t.parse::<f64>() {
                return Value::Float(f);
            }
        }
        Value::Str(t.to_owned())
    }

    /// String view (only for [`Value::Str`]).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view (integers widen to floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Shorthand for map lookup; `None` for non-map values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Descriptive name of the value's type (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "mapping",
        }
    }

    /// Walk a `/`-separated path of map keys and sequence indices, e.g.
    /// `tasks/0/func`.
    pub fn lookup_path(&self, path: &str) -> Option<&Value> {
        let mut current = self;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            current = match current {
                Value::Map(m) => m.get(part)?,
                Value::Seq(s) => s.get(part.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(current)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::emit::emit_value(self))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_preserves_order() {
        let mut m = Map::new();
        m.insert("b", Value::Int(1));
        m.insert("a", Value::Int(2));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(m.get("a"), Some(&Value::Int(2)));
        assert!(m.contains_key("b"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("x", Value::Int(1));
        m.insert("y", Value::Int(2));
        m.insert("x", Value::Int(9));
        assert_eq!(m.get("x"), Some(&Value::Int(9)));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["x", "y"]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn map_remove() {
        let mut m = Map::new();
        m.insert("x", Value::Int(1));
        assert_eq!(m.remove("x"), Some(Value::Int(1)));
        assert_eq!(m.remove("x"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn plain_scalar_resolution() {
        assert_eq!(Value::from_plain_scalar("null"), Value::Null);
        assert_eq!(Value::from_plain_scalar("~"), Value::Null);
        assert_eq!(Value::from_plain_scalar(""), Value::Null);
        assert_eq!(Value::from_plain_scalar("true"), Value::Bool(true));
        assert_eq!(Value::from_plain_scalar("False"), Value::Bool(false));
        assert_eq!(Value::from_plain_scalar("42"), Value::Int(42));
        assert_eq!(Value::from_plain_scalar("-7"), Value::Int(-7));
        assert_eq!(Value::from_plain_scalar("3.5"), Value::Float(3.5));
        assert_eq!(
            Value::from_plain_scalar("outfile.h5"),
            Value::Str("outfile.h5".into())
        );
        assert_eq!(
            Value::from_plain_scalar("/group1/grid"),
            Value::Str("/group1/grid".into())
        );
    }

    #[test]
    fn accessors_return_expected_views() {
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(Value::Str("x".into()).as_i64().is_none());
        assert!(Value::Int(1).as_str().is_none());
    }

    #[test]
    fn lookup_path_traverses_maps_and_sequences() {
        let mut inner = Map::new();
        inner.insert("func", Value::Str("producer".into()));
        let mut root = Map::new();
        root.insert("tasks", Value::Seq(vec![Value::Map(inner)]));
        let doc = Value::Map(root);
        assert_eq!(
            doc.lookup_path("tasks/0/func").and_then(Value::as_str),
            Some("producer")
        );
        assert!(doc.lookup_path("tasks/1/func").is_none());
        assert!(doc.lookup_path("missing").is_none());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Seq(vec![]).type_name(), "sequence");
        assert_eq!(Value::Map(Map::new()).type_name(), "mapping");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(3_i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
    }

    #[test]
    fn from_iterator_builds_map() {
        let m: Map = vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("b"), Some(&Value::Int(2)));
    }
}
