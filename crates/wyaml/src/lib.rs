//! `wfspeak-wyaml` — a minimal, from-scratch YAML-subset parser and emitter.
//!
//! Workflow systems such as Wilkins and ADIOS2 describe workflow graphs in
//! small, regular YAML documents (block mappings, block sequences, scalars,
//! occasional flow collections).  The reproduction hint for this paper calls
//! for workflow parsing to be built from scratch, so this crate implements
//! exactly the subset those configuration files need instead of pulling in a
//! full YAML implementation:
//!
//! * block mappings (`key: value`) with arbitrary nesting by indentation,
//! * block sequences (`- item`), including sequences of mappings,
//! * flow sequences (`[a, b]`) and flow mappings (`{a: 1}`) as scalar-level
//!   constructs,
//! * plain, single-quoted and double-quoted scalars,
//! * integers, floats, booleans and null,
//! * `#` comments and blank lines,
//! * a deterministic emitter that round-trips parsed documents.
//!
//! Out of scope (and rejected with an error where detectable): anchors,
//! aliases, tags, multi-document streams, block scalars (`|`, `>`).
//!
//! # Example
//!
//! ```
//! use wfspeak_wyaml::{parse, Value};
//!
//! let doc = parse("tasks:\n  - func: producer\n    nprocs: 3\n").unwrap();
//! let tasks = doc.get("tasks").unwrap().as_seq().unwrap();
//! assert_eq!(tasks[0].get("func").unwrap().as_str(), Some("producer"));
//! assert_eq!(tasks[0].get("nprocs").unwrap().as_i64(), Some(3));
//! ```

pub mod emit;
pub mod error;
pub mod parse;
pub mod value;

pub use emit::{emit, emit_value};
pub use error::{Error, ErrorKind};
pub use parse::parse;
pub use value::{Map, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple_document() {
        let src = "name: workflow\ncount: 3\nenabled: true\n";
        let doc = parse(src).unwrap();
        let emitted = emit(&doc);
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn wilkins_style_document_parses() {
        let src = "\
tasks:
  - func: producer
    nprocs: 3
    outports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
  - func: consumer1
    nprocs: 1
    inports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
";
        let doc = parse(src).unwrap();
        let tasks = doc.get("tasks").unwrap().as_seq().unwrap();
        assert_eq!(tasks.len(), 2);
        let outports = tasks[0].get("outports").unwrap().as_seq().unwrap();
        assert_eq!(
            outports[0].get("filename").unwrap().as_str(),
            Some("outfile.h5")
        );
        let dsets = outports[0].get("dsets").unwrap().as_seq().unwrap();
        assert_eq!(dsets[0].get("name").unwrap().as_str(), Some("/group1/grid"));
        assert_eq!(dsets[0].get("memory").unwrap().as_i64(), Some(1));
    }
}
