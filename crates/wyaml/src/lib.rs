//! `wfspeak-wyaml` — a minimal, from-scratch YAML-subset parser and emitter
//! built around a zero-copy, span-carrying document model.
//!
//! Workflow systems such as Wilkins and ADIOS2 describe workflow graphs in
//! small, regular YAML documents (block mappings, block sequences, scalars,
//! occasional flow collections).  The reproduction hint for this paper calls
//! for workflow parsing to be built from scratch, so this crate implements
//! exactly the subset those configuration files need instead of pulling in a
//! full YAML implementation:
//!
//! * block mappings (`key: value`) with arbitrary nesting by indentation,
//! * block sequences (`- item`), including sequences of mappings,
//! * flow sequences (`[a, b]`) and flow mappings (`{a: 1}`) as scalar-level
//!   constructs,
//! * plain, single-quoted and double-quoted scalars,
//! * integers, floats, booleans and null,
//! * `#` comments and blank lines,
//! * a deterministic emitter that round-trips parsed documents.
//!
//! Out of scope (and rejected with an error where detectable): anchors,
//! aliases, tags, multi-document streams, block scalars (`|`, `>`), tabs in
//! block indentation ([`ErrorKind::TabIndent`]).
//!
//! # The borrowed document model
//!
//! [`parse_document`] is the primary entry point.  It returns a
//! [`Document`]`<'a>` that **borrows from the input `&'a str`**:
//!
//! * Plain scalars, single-quoted scalars, and double-quoted scalars
//!   without escape sequences are `Cow::Borrowed` slices of the original
//!   buffer — parsing a well-formed document allocates only the tree
//!   structure, never the string data.
//! * `Cow::Owned` appears in exactly one case: a double-quoted scalar (or
//!   key) whose body contains a backslash, where unescaping must build a
//!   new string (`"line\nbreak"` → `line<newline>break`).
//! * Every mapping key is interned into a per-document [`Interner`]: equal
//!   key text yields the same [`Symbol`], so duplicate-key detection is a
//!   `u32` comparison and callers can count distinct keys without walking
//!   the tree.
//! * Every node and mapping key carries a [`Span`] (`line`, `column`,
//!   `len`; 1-based line and byte column), and every [`Error`] points at an
//!   exact `line:column` of a real input character.
//!
//! The owned [`Value`]/[`Map`] model is a thin layer on top:
//! [`parse()`] is `parse_document(src).map(Document::into_owned)`, so
//! consumers that do not care about lifetimes or spans keep a plain owned
//! API.
//!
//! The pre-rewrite owned parser is preserved in [`baseline`] for
//! differential testing and for measuring the zero-copy parser's speedup
//! inside one benchmark artifact.
//!
//! # Example
//!
//! ```
//! use wfspeak_wyaml::{parse, parse_document, Value};
//!
//! let src = "tasks:\n  - func: producer\n    nprocs: 3\n";
//!
//! // Owned API — what most of the workspace uses.
//! let doc = parse(src).unwrap();
//! let tasks = doc.get("tasks").unwrap().as_seq().unwrap();
//! assert_eq!(tasks[0].get("func").unwrap().as_str(), Some("producer"));
//! assert_eq!(tasks[0].get("nprocs").unwrap().as_i64(), Some(3));
//!
//! // Borrowed API — zero-copy scalars plus spans.
//! let doc = parse_document(src).unwrap();
//! let func = doc.root().get("tasks").unwrap().as_seq().unwrap()[0]
//!     .get("func")
//!     .unwrap();
//! assert_eq!(func.as_str(), Some("producer"));
//! assert_eq!((func.span.line, func.span.column), (2, 11));
//! assert_eq!(doc.interner().len(), 3); // tasks, func, nprocs
//! ```
//!
//! Errors carry exact positions:
//!
//! ```
//! use wfspeak_wyaml::{parse, ErrorKind};
//!
//! let err = parse("a:\n\tb: 1\n").unwrap_err();
//! assert_eq!(err.kind, ErrorKind::TabIndent);
//! assert_eq!((err.line(), err.column()), (2, 1));
//! ```

pub mod baseline;
pub mod borrowed;
pub mod emit;
pub mod error;
pub mod intern;
pub mod parse;
pub mod span;
pub mod value;

pub use borrowed::{Document, EntryRef, MapRef, Node, ValueRef};
pub use emit::{emit, emit_value};
pub use error::{Error, ErrorKind};
pub use intern::{Interner, Symbol};
pub use parse::{parse, parse_document};
pub use span::Span;
pub use value::{Map, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple_document() {
        let src = "name: workflow\ncount: 3\nenabled: true\n";
        let doc = parse(src).unwrap();
        let emitted = emit(&doc);
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn wilkins_style_document_parses() {
        let src = "\
tasks:
  - func: producer
    nprocs: 3
    outports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
  - func: consumer1
    nprocs: 1
    inports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
";
        let doc = parse(src).unwrap();
        let tasks = doc.get("tasks").unwrap().as_seq().unwrap();
        assert_eq!(tasks.len(), 2);
        let outports = tasks[0].get("outports").unwrap().as_seq().unwrap();
        assert_eq!(
            outports[0].get("filename").unwrap().as_str(),
            Some("outfile.h5")
        );
        let dsets = outports[0].get("dsets").unwrap().as_seq().unwrap();
        assert_eq!(dsets[0].get("name").unwrap().as_str(), Some("/group1/grid"));
        assert_eq!(dsets[0].get("memory").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn baseline_and_zero_copy_agree_on_the_happy_path() {
        let src = "\
io:
  name: SimulationOutput
  engine:
    type: SST
variables:
  - name: array
    shape: [4, 50]
";
        assert_eq!(parse(src).unwrap(), baseline::parse(src).unwrap());
    }
}
