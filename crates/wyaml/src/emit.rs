//! Deterministic emitter that renders a [`Value`] back to the supported
//! YAML subset (block style, two-space indentation).

use crate::value::{Map, Value};

/// Emit a document with a trailing newline.
pub fn emit(value: &Value) -> String {
    let mut out = String::new();
    match value {
        Value::Map(m) => emit_map(m, 0, &mut out),
        Value::Seq(s) => emit_seq(s, 0, &mut out),
        other => {
            out.push_str(&emit_scalar(other));
            out.push('\n');
        }
    }
    out
}

/// Emit a single value inline (flow style for collections); used by
/// `Display` and for embedding values in messages.
pub fn emit_value(value: &Value) -> String {
    match value {
        Value::Seq(items) => {
            let inner: Vec<String> = items.iter().map(emit_value).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Map(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{}: {}", quote_in_flow(k), emit_value(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        Value::Str(s) => quote_in_flow(s),
        other => emit_scalar(other),
    }
}

fn emit_scalar(value: &Value) -> String {
    match value {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Value::Str(s) => quote_if_needed(s),
        Value::Seq(_) | Value::Map(_) => unreachable!("collections handled by caller"),
    }
}

/// Render `s` as a double-quoted scalar, escaping everything the parser's
/// quoted-scalar reader unescapes (`\\`, `\"`, `\n`, `\t` — newlines and
/// tabs would otherwise break the line-oriented block format).
fn quoted(s: &str) -> String {
    format!(
        "\"{}\"",
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t")
    )
}

/// Quote a string scalar when emitting it plainly would change its meaning
/// on re-parse (empty, looks like another type, contains YAML syntax, or —
/// for the quote characters and control whitespace — would derail the
/// line/quote scanning of keys and comments).
fn quote_if_needed(s: &str) -> String {
    let needs_quoting = s.is_empty()
        || s != s.trim()
        || matches!(
            s,
            "null"
                | "Null"
                | "NULL"
                | "~"
                | "true"
                | "True"
                | "TRUE"
                | "false"
                | "False"
                | "FALSE"
                | "..."
        )
        || s.parse::<i64>().is_ok()
        || (s.parse::<f64>().is_ok()
            && s.chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        || s.starts_with([
            '-', '[', ']', '{', '}', '&', '*', '!', '#', '\'', '"', '|', '>',
        ])
        || s.contains(": ")
        || s.ends_with(':')
        || s.contains(" #")
        // A quote character anywhere in a plain scalar toggles the parser's
        // quote trackers (comment stripping, mapping-colon search); an
        // opening bracket/brace makes the mapping-colon search think the
        // colon sits inside a flow collection; newlines and tabs break the
        // line-oriented format outright.
        || s.contains(['"', '\'', '[', '{', '\n', '\t']);
    if needs_quoting {
        quoted(s)
    } else {
        s.to_owned()
    }
}

/// Quote a string for *flow* context: everything [`quote_if_needed`] quotes,
/// plus strings containing flow punctuation (`,`, brackets, braces), colons,
/// quotes or backslashes, any of which would change meaning when re-parsed
/// inside a flow collection.
fn quote_in_flow(s: &str) -> String {
    if s.contains([',', ':', '[', ']', '{', '}', '"', '\'', '\\', '#']) {
        quoted(s)
    } else {
        quote_if_needed(s)
    }
}

fn indent_str(indent: usize) -> String {
    " ".repeat(indent)
}

fn emit_map(map: &Map, indent: usize, out: &mut String) {
    if map.is_empty() {
        out.push_str(&format!("{}{{}}\n", indent_str(indent)));
        return;
    }
    for (key, value) in map.iter() {
        match value {
            Value::Map(m) if !m.is_empty() => {
                out.push_str(&format!(
                    "{}{}:\n",
                    indent_str(indent),
                    quote_if_needed(key)
                ));
                emit_map(m, indent + 2, out);
            }
            Value::Seq(s) if !s.is_empty() => {
                out.push_str(&format!(
                    "{}{}:\n",
                    indent_str(indent),
                    quote_if_needed(key)
                ));
                emit_seq(s, indent + 2, out);
            }
            Value::Map(_) => {
                out.push_str(&format!(
                    "{}{}: {{}}\n",
                    indent_str(indent),
                    quote_if_needed(key)
                ));
            }
            Value::Seq(_) => {
                out.push_str(&format!(
                    "{}{}: []\n",
                    indent_str(indent),
                    quote_if_needed(key)
                ));
            }
            scalar => {
                out.push_str(&format!(
                    "{}{}: {}\n",
                    indent_str(indent),
                    quote_if_needed(key),
                    emit_scalar(scalar)
                ));
            }
        }
    }
}

fn emit_seq(seq: &[Value], indent: usize, out: &mut String) {
    if seq.is_empty() {
        out.push_str(&format!("{}[]\n", indent_str(indent)));
        return;
    }
    for item in seq {
        match item {
            Value::Map(m) if !m.is_empty() => {
                // First key inline with the dash, remaining keys below.
                let mut first = true;
                for (key, value) in m.iter() {
                    let prefix = if first {
                        format!("{}- ", indent_str(indent))
                    } else {
                        format!("{}  ", indent_str(indent))
                    };
                    first = false;
                    match value {
                        Value::Map(inner) if !inner.is_empty() => {
                            out.push_str(&format!("{prefix}{}:\n", quote_if_needed(key)));
                            emit_map(inner, indent + 4, out);
                        }
                        Value::Seq(inner) if !inner.is_empty() => {
                            out.push_str(&format!("{prefix}{}:\n", quote_if_needed(key)));
                            emit_seq(inner, indent + 4, out);
                        }
                        Value::Map(_) => {
                            out.push_str(&format!("{prefix}{}: {{}}\n", quote_if_needed(key)));
                        }
                        Value::Seq(_) => {
                            out.push_str(&format!("{prefix}{}: []\n", quote_if_needed(key)));
                        }
                        scalar => {
                            out.push_str(&format!(
                                "{prefix}{}: {}\n",
                                quote_if_needed(key),
                                emit_scalar(scalar)
                            ));
                        }
                    }
                }
            }
            Value::Seq(s) if !s.is_empty() => {
                out.push_str(&format!("{}-\n", indent_str(indent)));
                emit_seq(s, indent + 2, out);
            }
            Value::Map(_) => out.push_str(&format!("{}- {{}}\n", indent_str(indent))),
            Value::Seq(_) => out.push_str(&format!("{}- []\n", indent_str(indent))),
            scalar => {
                out.push_str(&format!(
                    "{}- {}\n",
                    indent_str(indent),
                    emit_scalar(scalar)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) {
        let doc = parse(src).unwrap();
        let emitted = emit(&doc);
        let reparsed =
            parse(&emitted).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{emitted}"));
        assert_eq!(doc, reparsed, "round trip changed document:\n{emitted}");
    }

    #[test]
    fn scalar_emission() {
        assert_eq!(emit(&Value::Int(3)), "3\n");
        assert_eq!(emit(&Value::Bool(false)), "false\n");
        assert_eq!(emit(&Value::Null), "null\n");
        assert_eq!(emit(&Value::Str("plain".into())), "plain\n");
    }

    #[test]
    fn float_emission_keeps_decimal_point() {
        assert_eq!(emit(&Value::Float(2.0)), "2.0\n");
        assert_eq!(emit(&Value::Float(2.5)), "2.5\n");
    }

    #[test]
    fn strings_that_look_like_numbers_are_quoted() {
        assert_eq!(emit(&Value::Str("42".into())), "\"42\"\n");
        assert_eq!(emit(&Value::Str("true".into())), "\"true\"\n");
        assert_eq!(emit(&Value::Str("".into())), "\"\"\n");
    }

    #[test]
    fn inline_value_rendering() {
        let mut m = Map::new();
        m.insert("a", Value::Int(1));
        m.insert("b", Value::Seq(vec![Value::Int(2), Value::Int(3)]));
        assert_eq!(emit_value(&Value::Map(m)), "{a: 1, b: [2, 3]}");
    }

    #[test]
    fn round_trip_flat_mapping() {
        round_trip("a: 1\nb: text\nc: true\nd: 2.5\n");
    }

    #[test]
    fn round_trip_nested_structures() {
        round_trip("outer:\n  inner:\n    - 1\n    - x: 2\n      y: 3\n");
    }

    #[test]
    fn round_trip_wilkins_config() {
        round_trip(
            "tasks:\n  - func: producer\n    nprocs: 3\n    outports:\n      - filename: outfile.h5\n        dsets:\n          - name: /group1/grid\n            file: 0\n            memory: 1\n",
        );
    }

    #[test]
    fn round_trip_empty_collections() {
        round_trip("a: {}\nb: []\nc: null\n");
    }

    #[test]
    fn round_trip_sequence_document() {
        round_trip("- 1\n- two\n- false\n");
    }

    #[test]
    fn emitted_wilkins_config_is_stable() {
        let src = "tasks:\n  - func: producer\n    nprocs: 3\n";
        let doc = parse(src).unwrap();
        let once = emit(&doc);
        let twice = emit(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
