//! Parse errors with line/column information.

use std::fmt;

/// Category of parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Indentation does not match any open block.
    BadIndentation,
    /// A mapping entry was expected (`key: value`).
    ExpectedMapping,
    /// A sequence entry was expected (`- item`).
    ExpectedSequence,
    /// A quoted scalar was not terminated before the end of the line.
    UnterminatedString,
    /// A flow collection (`[...]` / `{...}`) was not closed.
    UnterminatedFlow,
    /// The construct is valid YAML but outside the supported subset
    /// (anchors, tags, block scalars, multiple documents).
    Unsupported,
    /// Mapping key appears twice in the same block.
    DuplicateKey,
    /// Anything else.
    Other,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::BadIndentation => "bad indentation",
            ErrorKind::ExpectedMapping => "expected a `key: value` mapping entry",
            ErrorKind::ExpectedSequence => "expected a `- item` sequence entry",
            ErrorKind::UnterminatedString => "unterminated quoted string",
            ErrorKind::UnterminatedFlow => "unterminated flow collection",
            ErrorKind::Unsupported => "unsupported YAML construct",
            ErrorKind::DuplicateKey => "duplicate mapping key",
            ErrorKind::Other => "parse error",
        };
        f.write_str(s)
    }
}

/// A parse error, carrying the 1-based source line (and column, when the
/// parser can pin one down) where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Error category.
    pub kind: ErrorKind,
    /// 1-based line number in the source text.
    pub line: usize,
    /// 1-based byte column in the source line, when known.
    pub column: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl Error {
    /// Construct an error at a specific line.
    pub fn new(kind: ErrorKind, line: usize, message: impl Into<String>) -> Self {
        Error {
            kind,
            line,
            column: None,
            message: message.into(),
        }
    }

    /// Construct an error at a specific line and column.
    pub fn at(kind: ErrorKind, line: usize, column: usize, message: impl Into<String>) -> Self {
        Error {
            kind,
            line,
            column: Some(column),
            message: message.into(),
        }
    }

    /// Attach a 1-based column to this error.
    pub fn with_column(mut self, column: usize) -> Self {
        self.column = Some(column);
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.column {
            Some(col) => write!(
                f,
                "line {}, column {}: {}: {}",
                self.line, col, self.kind, self.message
            ),
            None => write!(f, "line {}: {}: {}", self.line, self.kind, self.message),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_kind_and_message() {
        let e = Error::new(ErrorKind::BadIndentation, 7, "unexpected indent of 3");
        let s = format!("{e}");
        assert!(s.contains("line 7"));
        assert!(s.contains("bad indentation"));
        assert!(s.contains("unexpected indent of 3"));
    }

    #[test]
    fn display_includes_column_when_known() {
        let e = Error::at(ErrorKind::UnterminatedString, 3, 12, "missing closing `\"`");
        let s = format!("{e}");
        assert!(s.contains("line 3"));
        assert!(s.contains("column 12"));
        let bare = Error::new(ErrorKind::Other, 1, "x");
        assert!(!format!("{bare}").contains("column"));
        assert_eq!(bare.clone().with_column(4).column, Some(4));
    }

    #[test]
    fn error_kinds_have_distinct_messages() {
        let kinds = [
            ErrorKind::BadIndentation,
            ErrorKind::ExpectedMapping,
            ErrorKind::ExpectedSequence,
            ErrorKind::UnterminatedString,
            ErrorKind::UnterminatedFlow,
            ErrorKind::Unsupported,
            ErrorKind::DuplicateKey,
            ErrorKind::Other,
        ];
        let mut messages: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
        messages.dedup();
        assert_eq!(messages.len(), kinds.len());
    }
}
