//! Parse errors.  Every error carries a full [`Span`] — an exact 1-based
//! `line:column` pointing at a real character of the input — so failure
//! categories in the evaluation tables can be pinned to source positions
//! instead of a flat "did not parse".

use crate::span::Span;
use std::fmt;

/// Category of parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Indentation does not match any open block.
    BadIndentation,
    /// A tab character used in block indentation.  Tabs have no defined
    /// width in YAML indentation; silently counting them as one column
    /// would nest the document differently than it reads.
    TabIndent,
    /// A mapping entry was expected (`key: value`).
    ExpectedMapping,
    /// A sequence entry was expected (`- item`).
    ExpectedSequence,
    /// A quoted scalar was not terminated before the end of the line.
    UnterminatedString,
    /// A flow collection (`[...]` / `{...}`) was not closed.
    UnterminatedFlow,
    /// The construct is valid YAML but outside the supported subset
    /// (anchors, tags, block scalars, multiple documents).
    Unsupported,
    /// Mapping key appears twice in the same (block or flow) mapping.
    DuplicateKey,
    /// Anything else.
    Other,
}

impl ErrorKind {
    /// Every kind, for exhaustive category accounting.
    pub const ALL: &'static [ErrorKind] = &[
        ErrorKind::BadIndentation,
        ErrorKind::TabIndent,
        ErrorKind::ExpectedMapping,
        ErrorKind::ExpectedSequence,
        ErrorKind::UnterminatedString,
        ErrorKind::UnterminatedFlow,
        ErrorKind::Unsupported,
        ErrorKind::DuplicateKey,
        ErrorKind::Other,
    ];

    /// Stable kebab-case identifier: the failure-category label used by the
    /// benches and mapped into the systems diagnostic vocabulary.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::BadIndentation => "bad-indentation",
            ErrorKind::TabIndent => "tab-indent",
            ErrorKind::ExpectedMapping => "expected-mapping",
            ErrorKind::ExpectedSequence => "expected-sequence",
            ErrorKind::UnterminatedString => "unterminated-string",
            ErrorKind::UnterminatedFlow => "unterminated-flow",
            ErrorKind::Unsupported => "unsupported-yaml",
            ErrorKind::DuplicateKey => "duplicate-key",
            ErrorKind::Other => "parse-error",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::BadIndentation => "bad indentation",
            ErrorKind::TabIndent => "tab in indentation",
            ErrorKind::ExpectedMapping => "expected a `key: value` mapping entry",
            ErrorKind::ExpectedSequence => "expected a `- item` sequence entry",
            ErrorKind::UnterminatedString => "unterminated quoted string",
            ErrorKind::UnterminatedFlow => "unterminated flow collection",
            ErrorKind::Unsupported => "unsupported YAML construct",
            ErrorKind::DuplicateKey => "duplicate mapping key",
            ErrorKind::Other => "parse error",
        };
        f.write_str(s)
    }
}

/// A parse error at an exact source position.
///
/// There is no way to construct an `Error` without a column: every error
/// site in the parser must pin down exactly which character it is pointing
/// at (the pre-rewrite parser's optional column left most failures with a
/// bare line number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Error category.
    pub kind: ErrorKind,
    /// Exact source region: 1-based line and byte column of the offending
    /// character.
    pub span: Span,
    /// Human-readable detail.
    pub message: String,
}

impl Error {
    /// Construct an error pointing at `line:column` (both 1-based).
    pub fn at(kind: ErrorKind, line: usize, column: usize, message: impl Into<String>) -> Self {
        Error::with_span(kind, Span::point(line, column), message)
    }

    /// Construct an error over an explicit span.
    pub fn with_span(kind: ErrorKind, span: Span, message: impl Into<String>) -> Self {
        Error {
            kind,
            span,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.span.line
    }

    /// 1-based byte column of the error.
    pub fn column(&self) -> usize {
        self.span.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.span, self.kind, self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_kind_and_message() {
        let e = Error::at(ErrorKind::BadIndentation, 7, 3, "unexpected indent of 3");
        let s = format!("{e}");
        assert!(s.contains("line 7"));
        assert!(s.contains("column 3"));
        assert!(s.contains("bad indentation"));
        assert!(s.contains("unexpected indent of 3"));
    }

    #[test]
    fn accessors_expose_the_span() {
        let e = Error::at(ErrorKind::UnterminatedString, 3, 12, "missing closing `\"`");
        assert_eq!(e.line(), 3);
        assert_eq!(e.column(), 12);
        assert_eq!(e.span, Span::point(3, 12));
        let wide = Error::with_span(ErrorKind::Other, Span::new(2, 4, 6), "x");
        assert_eq!((wide.line(), wide.column(), wide.span.len), (2, 4, 6));
    }

    #[test]
    fn error_kinds_have_distinct_messages_and_codes() {
        let mut messages: Vec<String> = ErrorKind::ALL.iter().map(|k| k.to_string()).collect();
        messages.sort();
        messages.dedup();
        assert_eq!(messages.len(), ErrorKind::ALL.len());
        let mut codes: Vec<&str> = ErrorKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), ErrorKind::ALL.len());
    }
}
