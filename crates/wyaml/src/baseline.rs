//! The pre-rewrite owned-`String` parser, preserved verbatim.
//!
//! This module exists for two reasons:
//!
//! * **Differential testing** — the round-trip proptests parse every
//!   generated document with both parsers and require the zero-copy parser
//!   ([`crate::parse()`]) to be a refinement of this one: whenever the new
//!   parser accepts, the baseline must accept with the same value, and
//!   whenever the baseline rejects, the new parser must reject too.
//! * **Benchmarking** — `BENCH_7` measures corpus parse throughput of both
//!   parsers on identical inputs, so the speedup claim is computed inside
//!   one artifact instead of compared across commits.
//!
//! It deliberately retains the old parser's two known bugs (fixed in the
//! zero-copy parser): tabs in indentation are reported as plain
//! [`ErrorKind::BadIndentation`] rather than [`ErrorKind::TabIndent`], and
//! duplicate keys in *flow* mappings (`{a: 1, a: 2}`) are silently
//! last-wins instead of rejected.  Do not fix them here; the differential
//! properties are written to tolerate exactly these two divergences.

use crate::error::{Error, ErrorKind};
use crate::value::{Map, Value};

/// Parse a YAML-subset document with the pre-rewrite owned parser.
///
/// An empty document (only comments/blank lines) parses to [`Value::Null`].
pub fn parse(source: &str) -> Result<Value, Error> {
    let lines = preprocess(source)?;
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut parser = Parser { lines, pos: 0 };
    let root_indent = parser.lines[0].indent;
    let value = parser.parse_node(root_indent)?;
    if parser.pos < parser.lines.len() {
        let line = &parser.lines[parser.pos];
        return Err(Error::at(
            ErrorKind::BadIndentation,
            line.number,
            line.indent + 1,
            format!("unexpected content `{}` after document root", line.text),
        ));
    }
    Ok(value)
}

#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    number: usize,
}

fn preprocess(source: &str) -> Result<Vec<Line>, Error> {
    let mut out = Vec::new();
    let mut seen_doc_marker = false;
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let stripped = strip_comment(raw);
        let text = stripped.trim_end();
        if text.trim().is_empty() {
            continue;
        }
        let trimmed = text.trim_start();
        if trimmed == "---" {
            if seen_doc_marker || !out.is_empty() {
                return Err(Error::at(
                    ErrorKind::Unsupported,
                    number,
                    text.len() - trimmed.len() + 1,
                    "multiple YAML documents are not supported",
                ));
            }
            seen_doc_marker = true;
            continue;
        }
        if trimmed == "..." {
            break;
        }
        let indent_str: String = text
            .chars()
            .take_while(|c| *c == ' ' || *c == '\t')
            .collect();
        if let Some(tab) = indent_str.find('\t') {
            return Err(Error::at(
                ErrorKind::BadIndentation,
                number,
                tab + 1,
                "tabs are not allowed in indentation",
            ));
        }
        out.push(Line {
            indent: indent_str.len(),
            text: trimmed.to_owned(),
            number,
        });
    }
    Ok(out)
}

/// Remove a trailing `#` comment that is not inside a quoted scalar.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            // An escaped character inside a double-quoted scalar (e.g. `\"`)
            // must not toggle the quote tracker.
            b'\\' if in_double => i += 1,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            // YAML only treats '#' as a comment when at line start or
            // preceded by whitespace.
            b'#' if !in_single && !in_double && (i == 0 || bytes[i - 1].is_ascii_whitespace()) => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    fn current(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    /// Parse the node starting at the current line, which must sit at
    /// exactly `indent`.
    fn parse_node(&mut self, indent: usize) -> Result<Value, Error> {
        let line = match self.current() {
            Some(l) => l.clone(),
            None => return Ok(Value::Null),
        };
        if line.text.starts_with('-')
            && (line.text == "-" || line.text.starts_with("- ") || line.text == "---")
        {
            self.parse_sequence(indent)
        } else if find_mapping_colon(&line.text).is_some() {
            self.parse_mapping(indent)
        } else {
            // Single scalar document / nested scalar.
            self.pos += 1;
            parse_scalar(&line.text, line.number, line.indent + 1)
        }
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Value, Error> {
        let mut map = Map::new();
        while let Some(line) = self.current().cloned() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(Error::at(
                    ErrorKind::BadIndentation,
                    line.number,
                    line.indent + 1,
                    format!("unexpected indent {} (expected {})", line.indent, indent),
                ));
            }
            if line.text.starts_with("- ") || line.text == "-" {
                break;
            }
            let colon = find_mapping_colon(&line.text).ok_or_else(|| {
                Error::at(
                    ErrorKind::ExpectedMapping,
                    line.number,
                    line.indent + 1,
                    format!("`{}` is not a `key: value` entry", line.text),
                )
            })?;
            let raw_key = line.text[..colon].trim();
            // Anchors/aliases/tags are only syntax on *plain* keys; a quoted
            // key beginning with `&` is just a string.
            if raw_key.starts_with(['&', '*', '!']) {
                return Err(Error::at(
                    ErrorKind::Unsupported,
                    line.number,
                    line.indent + 1,
                    "anchors, aliases and tags are not supported",
                ));
            }
            let key = unquote_key(raw_key);
            if map.contains_key(&key) {
                return Err(Error::at(
                    ErrorKind::DuplicateKey,
                    line.number,
                    line.indent + 1,
                    format!("key `{key}` already defined in this mapping"),
                ));
            }
            let after = &line.text[colon + 1..];
            let rest = after.trim();
            // Column of the value's first character: indent + key text up to
            // the colon + the colon itself + leading whitespace, 1-based.
            let value_col = line.indent + colon + 1 + (after.len() - after.trim_start().len()) + 1;
            self.pos += 1;
            let value = if rest.is_empty() {
                match self.current() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        self.parse_node(child_indent)?
                    }
                    // A sequence nested under a key may sit at the same
                    // indent as the key (common YAML style).
                    Some(next)
                        if next.indent == indent
                            && (next.text.starts_with("- ") || next.text == "-") =>
                    {
                        self.parse_sequence(indent)?
                    }
                    _ => Value::Null,
                }
            } else {
                parse_scalar(rest, line.number, value_col)?
            };
            map.insert(key, value);
        }
        Ok(Value::Map(map))
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Value, Error> {
        let mut items = Vec::new();
        while let Some(line) = self.current().cloned() {
            if line.indent != indent || !(line.text.starts_with("- ") || line.text == "-") {
                if line.indent > indent {
                    return Err(Error::at(
                        ErrorKind::BadIndentation,
                        line.number,
                        line.indent + 1,
                        format!(
                            "unexpected indent {} in sequence (expected {})",
                            line.indent, indent
                        ),
                    ));
                }
                break;
            }
            let content = if line.text == "-" {
                ""
            } else {
                line.text[1..].trim_start()
            };
            if content.is_empty() {
                self.pos += 1;
                let value = match self.current() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        self.parse_node(child_indent)?
                    }
                    _ => Value::Null,
                };
                items.push(value);
            } else {
                // Inline content: re-home it at the content column so a
                // mapping started on the dash line can continue on the
                // following lines.
                let content_indent = indent + (line.text.len() - content.len());
                self.lines[self.pos] = Line {
                    indent: content_indent,
                    text: content.to_owned(),
                    number: line.number,
                };
                let value = self.parse_node(content_indent)?;
                items.push(value);
            }
        }
        Ok(Value::Seq(items))
    }
}

/// Locate the colon that separates a mapping key from its value: the first
/// `:` outside quotes that is followed by a space or ends the line.
fn find_mapping_colon(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0usize;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_double => escaped = true,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b':' if !in_single
                && !in_double
                && depth == 0
                && (i + 1 == bytes.len() || bytes[i + 1].is_ascii_whitespace()) =>
            {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

fn unquote_key(key: &str) -> String {
    let k = key.trim();
    // A double-quoted key must be unescaped the way quoted scalars are
    // (`"a\"b"` is the key `a"b`), but only when the opening quote's real
    // closing quote is the final character — otherwise the quotes are
    // literal content of a plain key.
    if k.len() >= 2 && k.starts_with('"') && find_closing_quote(k) == Some(k.len() - 1) {
        if let Ok(Value::Str(s)) = parse_quoted(k, 0, 1) {
            return s;
        }
    }
    if k.len() >= 2 && k.starts_with('\'') && k.ends_with('\'') {
        return k[1..k.len() - 1].to_owned();
    }
    if k.starts_with('"') && k.ends_with('"') && k.len() >= 2 {
        return k[1..k.len() - 1].to_owned();
    }
    k.to_owned()
}

/// Parse an inline scalar or flow collection.  `col` is the 1-based byte
/// column of `text`'s first character in the source line.
fn parse_scalar(text: &str, line: usize, col: usize) -> Result<Value, Error> {
    let t = text.trim();
    let col = col + (text.len() - text.trim_start().len());
    if t.starts_with('[') || t.starts_with('{') {
        let (value, rest) = parse_flow(t, line, col)?;
        if !rest.trim().is_empty() {
            return Err(Error::at(
                ErrorKind::Other,
                line,
                col + (t.len() - rest.trim_start().len()),
                format!("trailing content `{rest}` after flow collection"),
            ));
        }
        return Ok(value);
    }
    if t.starts_with('"') || t.starts_with('\'') {
        return parse_quoted(t, line, col);
    }
    if t == "|" || t == ">" || t.starts_with("| ") || t.starts_with("> ") {
        return Err(Error::at(
            ErrorKind::Unsupported,
            line,
            col,
            "block scalars (`|`, `>`) are not supported",
        ));
    }
    if t.starts_with('&') || t.starts_with('*') || t.starts_with('!') {
        return Err(Error::at(
            ErrorKind::Unsupported,
            line,
            col,
            "anchors, aliases and tags are not supported",
        ));
    }
    Ok(Value::from_plain_scalar(t))
}

fn parse_quoted(t: &str, line: usize, col: usize) -> Result<Value, Error> {
    let quote = t.chars().next().unwrap();
    let inner = &t[1..];
    let mut out = String::new();
    let mut chars = inner.chars();
    let mut closed = false;
    while let Some(c) = chars.next() {
        if c == quote {
            closed = true;
            break;
        }
        if quote == '"' && c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    if !closed {
        return Err(Error::at(
            ErrorKind::UnterminatedString,
            line,
            col,
            format!("missing closing `{quote}`"),
        ));
    }
    Ok(Value::Str(out))
}

/// Parse a flow collection starting at the beginning of `t`, returning the
/// value and the remaining unparsed text.  `col` is the 1-based column of
/// `t`'s first character; error columns are derived from how much of `t`
/// was consumed when the problem surfaced.
fn parse_flow(t: &str, line: usize, col: usize) -> Result<(Value, &str), Error> {
    let col = col + (t.len() - t.trim_start().len());
    let t = t.trim_start();
    // Column of a suffix of `t` still waiting to be parsed.
    let col_of = |rest: &str| col + (t.len() - rest.len());
    if let Some(rest) = t.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        loop {
            if let Some(r) = rest.strip_prefix(']') {
                return Ok((Value::Seq(items), r));
            }
            if rest.is_empty() {
                return Err(Error::at(
                    ErrorKind::UnterminatedFlow,
                    line,
                    col,
                    "missing `]`",
                ));
            }
            let (item, r) = parse_flow_item(rest, line, col_of(rest))?;
            items.push(item);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() && !rest.starts_with(']') {
                // A stray `}` (or any other junk) where `,`/`]` is expected
                // would otherwise re-parse as an empty item forever.
                return Err(Error::at(
                    ErrorKind::Other,
                    line,
                    col_of(rest),
                    format!("expected `,` or `]` in flow sequence, found `{rest}`"),
                ));
            }
        }
    }
    if let Some(rest) = t.strip_prefix('{') {
        let mut map = Map::new();
        let mut rest = rest.trim_start();
        loop {
            if let Some(r) = rest.strip_prefix('}') {
                return Ok((Value::Map(map), r));
            }
            if rest.is_empty() {
                return Err(Error::at(
                    ErrorKind::UnterminatedFlow,
                    line,
                    col,
                    "missing `}`",
                ));
            }
            let colon = find_flow_colon(rest).ok_or_else(|| {
                Error::at(
                    ErrorKind::ExpectedMapping,
                    line,
                    col_of(rest),
                    "flow mapping entry missing `:`",
                )
            })?;
            let raw_key = rest[..colon].trim();
            let key = if raw_key.starts_with('"') || raw_key.starts_with('\'') {
                match parse_quoted(raw_key, line, col_of(rest))? {
                    Value::Str(s) => s,
                    _ => unreachable!("parse_quoted always yields a string"),
                }
            } else {
                unquote_key(raw_key)
            };
            let after = rest[colon + 1..].trim_start();
            if after.starts_with('}') {
                map.insert(key, Value::Null);
                rest = after;
                continue;
            }
            let (val, r) = parse_flow_item(after, line, col_of(after))?;
            map.insert(key, val);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() && !rest.starts_with('}') {
                return Err(Error::at(
                    ErrorKind::Other,
                    line,
                    col_of(rest),
                    format!("expected `,` or `}}` in flow mapping, found `{rest}`"),
                ));
            }
        }
    }
    Err(Error::at(
        ErrorKind::Other,
        line,
        col,
        "expected flow collection",
    ))
}

fn parse_flow_item(t: &str, line: usize, col: usize) -> Result<(Value, &str), Error> {
    let col = col + (t.len() - t.trim_start().len());
    let t = t.trim_start();
    if t.starts_with('[') || t.starts_with('{') {
        return parse_flow(t, line, col);
    }
    if t.starts_with('"') || t.starts_with('\'') {
        let quote = t.chars().next().unwrap();
        // Find the closing quote, honouring backslash escapes so a scalar
        // like `"a\"b"` does not terminate at the escaped quote.
        if let Some(end) = find_closing_quote(t) {
            let value = parse_quoted(&t[..=end], line, col)?;
            return Ok((value, &t[end + 1..]));
        }
        return Err(Error::at(
            ErrorKind::UnterminatedString,
            line,
            col,
            format!("missing closing `{quote}` in flow scalar"),
        ));
    }
    // Plain flow scalar ends at ',', ']' or '}'.
    let end = t.find([',', ']', '}']).unwrap_or(t.len());
    Ok((Value::from_plain_scalar(&t[..end]), &t[end..]))
}

/// Byte index of the quote closing the quoted scalar that starts at `t[0]`,
/// skipping backslash-escaped characters inside double quotes.
fn find_closing_quote(t: &str) -> Option<usize> {
    let bytes = t.as_bytes();
    let quote = *bytes.first()?;
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'\\' && quote == b'"' {
            i += 2;
        } else if bytes[i] == quote {
            return Some(i);
        } else {
            i += 1;
        }
    }
    None
}

/// Locate the colon separating a flow-mapping key from its value: the first
/// `:` after the key scalar.  A quoted key can only *start* at the beginning
/// of the entry; quote characters later in a plain key (`it's`) are literal.
fn find_flow_colon(t: &str) -> Option<usize> {
    let bytes = t.as_bytes();
    let mut i = 0;
    if matches!(bytes.first(), Some(b'"') | Some(b'\'')) {
        i = find_closing_quote(t)? + 1;
    }
    bytes[i..].iter().position(|&b| b == b':').map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let doc = parse("a: 1\nb: [1, 2]\nc: {k: v}\nd:\n  - x\n  - y\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Int(1)));
        assert_eq!(doc.get("b").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(doc.lookup_path("c/k").unwrap().as_str(), Some("v"));
        assert_eq!(doc.get("d").unwrap().as_seq().unwrap().len(), 2);
    }

    #[test]
    fn rejects_with_positions() {
        let err = parse("a: \"oops\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedString);
        assert_eq!((err.line(), err.column()), (1, 4));
        let err = parse("a: [1, 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedFlow);
        assert_eq!((err.line(), err.column()), (1, 4));
        let err = parse("a: 1\n   b: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadIndentation);
        assert_eq!((err.line(), err.column()), (2, 4));
    }

    #[test]
    fn known_bug_tabs_report_generic_bad_indentation() {
        // Preserved old behaviour: the zero-copy parser reports TabIndent.
        let err = parse("a:\n\tb: 1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadIndentation);
        assert_eq!((err.line(), err.column()), (2, 1));
    }

    #[test]
    fn known_bug_flow_duplicate_keys_are_last_wins() {
        // Preserved old behaviour: the zero-copy parser rejects this with
        // ErrorKind::DuplicateKey.
        let doc = parse("m: {a: 1, a: 2}\n").unwrap();
        let m = doc.get("m").unwrap();
        assert_eq!(m.get("a"), Some(&Value::Int(2)));
        assert_eq!(m.as_map().map(Map::len), Some(1));
    }

    #[test]
    fn block_duplicate_keys_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn deep_nesting_and_quoting_still_work() {
        let doc = parse("tasks:\n  - func: producer\n    nprocs: 3\n").unwrap();
        assert_eq!(doc.lookup_path("tasks/0/nprocs"), Some(&Value::Int(3)));
        let doc = parse("k: [\"a\\\"b\", 1]\n").unwrap();
        assert_eq!(
            doc.get("k").unwrap().as_seq().unwrap()[0],
            Value::Str("a\"b".into())
        );
    }
}
