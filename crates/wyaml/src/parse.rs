//! The zero-copy, span-carrying parser for the supported YAML subset.
//!
//! [`parse_document`] is the primary entry point: it borrows the input
//! `&str` and produces a [`Document`] of [`Node`]s whose scalars are
//! `Cow::Borrowed` slices of the original buffer wherever the text needs no
//! unescaping, and whose mapping keys are interned into a per-document
//! [`crate::Interner`].  [`parse()`] is the owned convenience wrapper the
//! rest of the workspace uses: `parse_document(..).into_owned()`.
//!
//! The parser is line-oriented: `preprocess` slices the source into
//! `(indent, content, line-number)` triples (no per-line allocation — each
//! `Line` is a `Copy` of two slices' worth of metadata), then a recursive
//! descent over those lines builds block mappings and sequences, handing
//! inline text to the scalar/flow sub-parsers.  Every node records the
//! [`Span`] it started at, and every [`Error`] carries an exact 1-based
//! `line:column` pointing at a real character of the input.

use std::borrow::Cow;

use crate::borrowed::{Document, EntryRef, MapRef, Node, ValueRef};
use crate::error::{Error, ErrorKind};
use crate::intern::Interner;
use crate::span::Span;
use crate::value::Value;

/// Parse a YAML-subset document into an owned [`Value`].
///
/// An empty document (only comments/blank lines) parses to [`Value::Null`].
/// This is a thin layer over [`parse_document`] + [`Document::into_owned`].
pub fn parse(source: &str) -> Result<Value, Error> {
    parse_document(source).map(Document::into_owned)
}

/// Parse a YAML-subset document into the borrowed, span-carrying model.
///
/// The returned [`Document`] borrows from `source`: plain scalars and
/// quoted scalars without escape sequences are slices of the input buffer.
pub fn parse_document(source: &str) -> Result<Document<'_>, Error> {
    let lines = preprocess(source)?;
    if lines.is_empty() {
        return Ok(Document::new(
            Node::new(ValueRef::Null, Span::new(1, 1, 0)),
            Interner::new(),
        ));
    }
    let mut parser = Parser {
        lines,
        pos: 0,
        interner: Interner::new(),
    };
    let root_indent = parser.lines[0].indent;
    let root = parser.parse_node(root_indent)?;
    if parser.pos < parser.lines.len() {
        let line = parser.lines[parser.pos];
        return Err(Error::at(
            ErrorKind::BadIndentation,
            line.number,
            line.indent + 1,
            format!("unexpected content `{}` after document root", line.text),
        ));
    }
    Ok(Document::new(root, parser.interner))
}

/// One significant source line: its indent width, its content (indent and
/// comment stripped) and its 1-based line number.  `Copy` slices — the
/// preprocessing pass allocates nothing per line.
#[derive(Debug, Clone, Copy)]
struct Line<'a> {
    indent: usize,
    text: &'a str,
    number: usize,
}

fn preprocess(source: &str) -> Result<Vec<Line<'_>>, Error> {
    let mut out = Vec::with_capacity(source.len() / 16 + 1);
    let mut seen_doc_marker = false;
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let stripped = strip_comment(raw);
        let text = stripped.trim_end();
        let trimmed = text.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "---" {
            if seen_doc_marker || !out.is_empty() {
                return Err(Error::at(
                    ErrorKind::Unsupported,
                    number,
                    text.len() - trimmed.len() + 1,
                    "multiple YAML documents are not supported",
                ));
            }
            seen_doc_marker = true;
            continue;
        }
        if trimmed == "..." {
            break;
        }
        let indent_end = text.len() - text.trim_start_matches([' ', '\t']).len();
        if let Some(tab) = text[..indent_end].find('\t') {
            return Err(Error::at(
                ErrorKind::TabIndent,
                number,
                tab + 1,
                "tab character in indentation (indent with spaces)",
            ));
        }
        out.push(Line {
            indent: indent_end,
            text: trimmed,
            number,
        });
    }
    Ok(out)
}

/// Remove a trailing `#` comment that is not inside a quoted scalar.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    // Fast path: most lines carry no `#` at all, and the quote tracking
    // below only exists to decide whether a `#` is a comment.
    if !bytes.contains(&b'#') {
        return line;
    }
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            // An escaped character inside a double-quoted scalar (e.g. `\"`)
            // must not toggle the quote tracker.
            b'\\' if in_double => i += 1,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            // YAML only treats '#' as a comment when at line start or
            // preceded by whitespace.
            b'#' if !in_single && !in_double && (i == 0 || bytes[i - 1].is_ascii_whitespace()) => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

struct Parser<'a> {
    lines: Vec<Line<'a>>,
    pos: usize,
    interner: Interner<'a>,
}

impl<'a> Parser<'a> {
    fn current(&self) -> Option<Line<'a>> {
        self.lines.get(self.pos).copied()
    }

    /// Parse the node starting at the current line, which must sit at
    /// exactly `indent`.
    fn parse_node(&mut self, indent: usize) -> Result<Node<'a>, Error> {
        let line = match self.current() {
            Some(l) => l,
            None => return Ok(Node::new(ValueRef::Null, Span::new(1, 1, 0))),
        };
        if line.text.starts_with('-')
            && (line.text == "-" || line.text.starts_with("- ") || line.text == "---")
        {
            self.parse_sequence(indent)
        } else if find_mapping_colon(line.text).is_some() {
            self.parse_mapping(indent)
        } else {
            // Single scalar document / nested scalar.
            self.pos += 1;
            parse_scalar(line.text, line.number, line.indent + 1, &mut self.interner)
        }
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Node<'a>, Error> {
        let span = match self.current() {
            Some(l) => Span::new(l.number, l.indent + 1, l.text.len()),
            None => Span::new(1, indent + 1, 0),
        };
        let mut map = MapRef::with_default_capacity();
        while let Some(line) = self.current() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(Error::at(
                    ErrorKind::BadIndentation,
                    line.number,
                    line.indent + 1,
                    format!("unexpected indent {} (expected {})", line.indent, indent),
                ));
            }
            if line.text.starts_with("- ") || line.text == "-" {
                break;
            }
            let colon = find_mapping_colon(line.text).ok_or_else(|| {
                Error::at(
                    ErrorKind::ExpectedMapping,
                    line.number,
                    line.indent + 1,
                    format!("`{}` is not a `key: value` entry", line.text),
                )
            })?;
            let raw_key = line.text[..colon].trim();
            // Anchors/aliases/tags are only syntax on *plain* keys; a quoted
            // key beginning with `&` is just a string.
            if raw_key.starts_with(['&', '*', '!']) {
                return Err(Error::at(
                    ErrorKind::Unsupported,
                    line.number,
                    line.indent + 1,
                    "anchors, aliases and tags are not supported",
                ));
            }
            let key = unquote_key(raw_key);
            let key_sym = self.interner.intern(key.clone());
            if map.contains_symbol(key_sym) {
                return Err(Error::at(
                    ErrorKind::DuplicateKey,
                    line.number,
                    line.indent + 1,
                    format!("key `{key}` already defined in this mapping"),
                ));
            }
            let key_span = Span::new(line.number, line.indent + 1, raw_key.len());
            let after = &line.text[colon + 1..];
            let after_start = after.trim_start();
            let rest = after_start.trim_end();
            // Column of the value's first character: indent + key text up to
            // the colon + the colon itself + leading whitespace, 1-based.
            let value_col = line.indent + colon + 1 + (after.len() - after_start.len()) + 1;
            self.pos += 1;
            let node = if rest.is_empty() {
                match self.current() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        self.parse_node(child_indent)?
                    }
                    // A sequence nested under a key may sit at the same
                    // indent as the key (common YAML style).
                    Some(next)
                        if next.indent == indent
                            && (next.text.starts_with("- ") || next.text == "-") =>
                    {
                        self.parse_sequence(indent)?
                    }
                    _ => Node::new(ValueRef::Null, Span::new(line.number, value_col, 0)),
                }
            } else {
                parse_scalar(rest, line.number, value_col, &mut self.interner)?
            };
            map.push(EntryRef {
                key,
                key_sym,
                key_span,
                node,
            });
        }
        Ok(Node::new(ValueRef::Map(map), span))
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Node<'a>, Error> {
        let span = match self.current() {
            Some(l) => Span::new(l.number, l.indent + 1, l.text.len()),
            None => Span::new(1, indent + 1, 0),
        };
        let mut items = Vec::with_capacity(4);
        while let Some(line) = self.current() {
            if line.indent != indent || !(line.text.starts_with("- ") || line.text == "-") {
                if line.indent > indent {
                    return Err(Error::at(
                        ErrorKind::BadIndentation,
                        line.number,
                        line.indent + 1,
                        format!(
                            "unexpected indent {} in sequence (expected {})",
                            line.indent, indent
                        ),
                    ));
                }
                break;
            }
            let content = if line.text == "-" {
                ""
            } else {
                line.text[1..].trim_start()
            };
            if content.is_empty() {
                self.pos += 1;
                let node = match self.current() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        self.parse_node(child_indent)?
                    }
                    _ => Node::new(ValueRef::Null, Span::new(line.number, indent + 2, 0)),
                };
                items.push(node);
            } else {
                // Inline content: re-home it at the content column so a
                // mapping started on the dash line can continue on the
                // following lines.  `content` is a subslice of the line, so
                // this is a pointer-width rewrite, not a reallocation.
                let content_indent = indent + (line.text.len() - content.len());
                self.lines[self.pos] = Line {
                    indent: content_indent,
                    text: content,
                    number: line.number,
                };
                let node = self.parse_node(content_indent)?;
                items.push(node);
            }
        }
        Ok(Node::new(ValueRef::Seq(items), span))
    }
}

/// Locate the colon that separates a mapping key from its value: the first
/// `:` outside quotes that is followed by a space or ends the line.
fn find_mapping_colon(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    // Fast path: until the first quote, bracket or escape, no state
    // tracking is needed — a `:` followed by whitespace (or end of line) is
    // the mapping colon, and any other byte just advances.
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' | b'"' | b'[' | b']' | b'{' | b'}' | b'\\' => {
                return find_mapping_colon_tracked(text)
            }
            b':' if i + 1 == bytes.len() || bytes[i + 1].is_ascii_whitespace() => return Some(i),
            _ => {}
        }
    }
    None
}

/// The full quote/bracket-tracking scan behind [`find_mapping_colon`], used
/// once a line contains syntax the fast path cannot skip over.
fn find_mapping_colon_tracked(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0usize;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_double => escaped = true,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b':' if !in_single
                && !in_double
                && depth == 0
                && (i + 1 == bytes.len() || bytes[i + 1].is_ascii_whitespace()) =>
            {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

fn unquote_key(key: &str) -> Cow<'_, str> {
    let k = key.trim();
    // A double-quoted key must be unescaped the way quoted scalars are
    // (`"a\"b"` is the key `a"b`), but only when the opening quote's real
    // closing quote is the final character — otherwise the quotes are
    // literal content of a plain key.
    if k.len() >= 2 && k.starts_with('"') && find_closing_quote(k) == Some(k.len() - 1) {
        if let Ok(s) = parse_quoted(k, 0, 1) {
            return s;
        }
    }
    if k.len() >= 2 && k.starts_with('\'') && k.ends_with('\'') {
        return Cow::Borrowed(&k[1..k.len() - 1]);
    }
    if k.starts_with('"') && k.ends_with('"') && k.len() >= 2 {
        return Cow::Borrowed(&k[1..k.len() - 1]);
    }
    Cow::Borrowed(k)
}

/// Parse an inline scalar or flow collection.  `col` is the 1-based byte
/// column of `text`'s first character in the source line.
fn parse_scalar<'a>(
    text: &'a str,
    line: usize,
    col: usize,
    interner: &mut Interner<'a>,
) -> Result<Node<'a>, Error> {
    let t = text.trim();
    let col = col + (text.len() - text.trim_start().len());
    if t.starts_with('[') || t.starts_with('{') {
        let (node, rest) = parse_flow(t, line, col, interner)?;
        if !rest.trim().is_empty() {
            return Err(Error::at(
                ErrorKind::Other,
                line,
                col + (t.len() - rest.trim_start().len()),
                format!("trailing content `{rest}` after flow collection"),
            ));
        }
        return Ok(node);
    }
    if t.starts_with('"') || t.starts_with('\'') {
        let s = parse_quoted(t, line, col)?;
        return Ok(Node::new(ValueRef::Str(s), Span::new(line, col, t.len())));
    }
    if t == "|" || t == ">" || t.starts_with("| ") || t.starts_with("> ") {
        return Err(Error::at(
            ErrorKind::Unsupported,
            line,
            col,
            "block scalars (`|`, `>`) are not supported",
        ));
    }
    if t.starts_with('&') || t.starts_with('*') || t.starts_with('!') {
        return Err(Error::at(
            ErrorKind::Unsupported,
            line,
            col,
            "anchors, aliases and tags are not supported",
        ));
    }
    Ok(Node::new(
        ValueRef::from_plain(t),
        Span::new(line, col, t.len()),
    ))
}

/// Decode the quoted scalar starting at `t[0]`, borrowing when the text
/// needs no unescaping.  Content after the closing quote is ignored (block
/// context); flow contexts slice `t` to the closing quote before calling.
fn parse_quoted<'a>(t: &'a str, line: usize, col: usize) -> Result<Cow<'a, str>, Error> {
    let quote = t.chars().next().unwrap();
    let Some(end) = find_closing_quote(t) else {
        return Err(Error::at(
            ErrorKind::UnterminatedString,
            line,
            col,
            format!("missing closing `{quote}`"),
        ));
    };
    let inner = &t[1..end];
    if quote == '"' && inner.contains('\\') {
        Ok(Cow::Owned(unescape_double(inner)))
    } else {
        Ok(Cow::Borrowed(inner))
    }
}

/// Resolve the backslash escapes of a double-quoted scalar body.  Only
/// called when `inner` actually contains a backslash — the escape-free case
/// borrows instead.
fn unescape_double(inner: &str) -> String {
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parse a flow collection starting at the beginning of `t`, returning the
/// node and the remaining unparsed text.  `col` is the 1-based column of
/// `t`'s first character; error columns are derived from how much of `t`
/// was consumed when the problem surfaced.
fn parse_flow<'a>(
    t: &'a str,
    line: usize,
    col: usize,
    interner: &mut Interner<'a>,
) -> Result<(Node<'a>, &'a str), Error> {
    let col = col + (t.len() - t.trim_start().len());
    let t = t.trim_start();
    // Column of a suffix of `t` still waiting to be parsed.
    let col_of = |rest: &str| col + (t.len() - rest.len());
    if let Some(first) = t.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = first.trim_start();
        loop {
            if let Some(r) = rest.strip_prefix(']') {
                let span = Span::new(line, col, col_of(r) - col);
                return Ok((Node::new(ValueRef::Seq(items), span), r));
            }
            if rest.is_empty() {
                return Err(Error::at(
                    ErrorKind::UnterminatedFlow,
                    line,
                    col,
                    "missing `]`",
                ));
            }
            let (item, r) = parse_flow_item(rest, line, col_of(rest), interner)?;
            items.push(item);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() && !rest.starts_with(']') {
                // A stray `}` (or any other junk) where `,`/`]` is expected
                // would otherwise re-parse as an empty item forever.
                return Err(Error::at(
                    ErrorKind::Other,
                    line,
                    col_of(rest),
                    format!("expected `,` or `]` in flow sequence, found `{rest}`"),
                ));
            }
        }
    }
    if let Some(first) = t.strip_prefix('{') {
        let mut map = MapRef::new();
        let mut rest = first.trim_start();
        loop {
            if let Some(r) = rest.strip_prefix('}') {
                let span = Span::new(line, col, col_of(r) - col);
                return Ok((Node::new(ValueRef::Map(map), span), r));
            }
            if rest.is_empty() {
                return Err(Error::at(
                    ErrorKind::UnterminatedFlow,
                    line,
                    col,
                    "missing `}`",
                ));
            }
            let colon = find_flow_colon(rest).ok_or_else(|| {
                Error::at(
                    ErrorKind::ExpectedMapping,
                    line,
                    col_of(rest),
                    "flow mapping entry missing `:`",
                )
            })?;
            let raw_key = rest[..colon].trim();
            let key_col = col_of(rest);
            let key = if raw_key.starts_with('"') || raw_key.starts_with('\'') {
                parse_quoted(raw_key, line, key_col)?
            } else {
                unquote_key(raw_key)
            };
            let key_sym = interner.intern(key.clone());
            if map.contains_symbol(key_sym) {
                return Err(Error::at(
                    ErrorKind::DuplicateKey,
                    line,
                    key_col,
                    format!("key `{key}` already defined in this flow mapping"),
                ));
            }
            let key_span = Span::new(line, key_col, raw_key.len());
            let after = rest[colon + 1..].trim_start();
            if after.starts_with('}') {
                map.push(EntryRef {
                    key,
                    key_sym,
                    key_span,
                    node: Node::new(ValueRef::Null, Span::new(line, col_of(after), 0)),
                });
                rest = after;
                continue;
            }
            let (val, r) = parse_flow_item(after, line, col_of(after), interner)?;
            map.push(EntryRef {
                key,
                key_sym,
                key_span,
                node: val,
            });
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() && !rest.starts_with('}') {
                return Err(Error::at(
                    ErrorKind::Other,
                    line,
                    col_of(rest),
                    format!("expected `,` or `}}` in flow mapping, found `{rest}`"),
                ));
            }
        }
    }
    Err(Error::at(
        ErrorKind::Other,
        line,
        col,
        "expected flow collection",
    ))
}

fn parse_flow_item<'a>(
    t: &'a str,
    line: usize,
    col: usize,
    interner: &mut Interner<'a>,
) -> Result<(Node<'a>, &'a str), Error> {
    let col = col + (t.len() - t.trim_start().len());
    let t = t.trim_start();
    if t.starts_with('[') || t.starts_with('{') {
        return parse_flow(t, line, col, interner);
    }
    if t.starts_with('"') || t.starts_with('\'') {
        let quote = t.chars().next().unwrap();
        // Find the closing quote, honouring backslash escapes so a scalar
        // like `"a\"b"` does not terminate at the escaped quote.
        if let Some(end) = find_closing_quote(t) {
            let s = parse_quoted(&t[..=end], line, col)?;
            let node = Node::new(ValueRef::Str(s), Span::new(line, col, end + 1));
            return Ok((node, &t[end + 1..]));
        }
        return Err(Error::at(
            ErrorKind::UnterminatedString,
            line,
            col,
            format!("missing closing `{quote}` in flow scalar"),
        ));
    }
    // Plain flow scalar ends at ',', ']' or '}'.
    let end = t.find([',', ']', '}']).unwrap_or(t.len());
    let node = Node::new(ValueRef::from_plain(&t[..end]), Span::new(line, col, end));
    Ok((node, &t[end..]))
}

/// Byte index of the quote closing the quoted scalar that starts at `t[0]`,
/// skipping backslash-escaped characters inside double quotes.
fn find_closing_quote(t: &str) -> Option<usize> {
    let bytes = t.as_bytes();
    let quote = *bytes.first()?;
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'\\' && quote == b'"' {
            i += 2;
        } else if bytes[i] == quote {
            return Some(i);
        } else {
            i += 1;
        }
    }
    None
}

/// Locate the colon separating a flow-mapping key from its value: the first
/// `:` after the key scalar.  A quoted key can only *start* at the beginning
/// of the entry; quote characters later in a plain key (`it's`) are literal.
fn find_flow_colon(t: &str) -> Option<usize> {
    let bytes = t.as_bytes();
    let mut i = 0;
    if matches!(bytes.first(), Some(b'"') | Some(b'\'')) {
        i = find_closing_quote(t)? + 1;
    }
    bytes[i..].iter().position(|&b| b == b':').map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Map;

    #[test]
    fn empty_and_comment_only_documents_are_null() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# just a comment\n\n").unwrap(), Value::Null);
    }

    #[test]
    fn scalar_document() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("hello").unwrap(), Value::Str("hello".into()));
    }

    #[test]
    fn simple_mapping() {
        let doc = parse("a: 1\nb: two\nc: true\nd:\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Int(1)));
        assert_eq!(doc.get("b"), Some(&Value::Str("two".into())));
        assert_eq!(doc.get("c"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Value::Null));
    }

    #[test]
    fn nested_mapping() {
        let doc = parse("outer:\n  inner:\n    leaf: 5\n").unwrap();
        assert_eq!(doc.lookup_path("outer/inner/leaf"), Some(&Value::Int(5)));
    }

    #[test]
    fn sequence_of_scalars() {
        let doc = parse("- 1\n- 2\n- three\n").unwrap();
        assert_eq!(
            doc,
            Value::Seq(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Str("three".into())
            ])
        );
    }

    #[test]
    fn sequence_of_mappings_with_inline_first_key() {
        let doc = parse("- func: producer\n  nprocs: 3\n- func: consumer\n  nprocs: 1\n").unwrap();
        let seq = doc.as_seq().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].get("nprocs"), Some(&Value::Int(3)));
        assert_eq!(seq[1].get("func").unwrap().as_str(), Some("consumer"));
    }

    #[test]
    fn sequence_under_key_at_same_indent() {
        let doc = parse("tasks:\n- a\n- b\n").unwrap();
        let tasks = doc.get("tasks").unwrap().as_seq().unwrap();
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn sequence_under_key_indented() {
        let doc = parse("tasks:\n  - a\n  - b\nother: 1\n").unwrap();
        assert_eq!(doc.get("tasks").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(doc.get("other"), Some(&Value::Int(1)));
    }

    #[test]
    fn nested_sequences_via_dash_dash() {
        let doc = parse("-\n  - 1\n  - 2\n- 3\n").unwrap();
        let seq = doc.as_seq().unwrap();
        assert_eq!(seq[0].as_seq().unwrap().len(), 2);
        assert_eq!(seq[1], Value::Int(3));
    }

    #[test]
    fn flow_sequence_and_mapping() {
        let doc = parse("dims: [64, 64, 64]\nmeta: {owner: sim, level: 2}\n").unwrap();
        assert_eq!(
            doc.get("dims").unwrap().as_seq().unwrap(),
            &[Value::Int(64), Value::Int(64), Value::Int(64)]
        );
        assert_eq!(doc.lookup_path("meta/owner").unwrap().as_str(), Some("sim"));
        assert_eq!(doc.lookup_path("meta/level"), Some(&Value::Int(2)));
    }

    #[test]
    fn empty_flow_collections() {
        let doc = parse("grid: {}\nitems: []\n").unwrap();
        assert_eq!(doc.get("grid"), Some(&Value::Map(Map::new())));
        assert_eq!(doc.get("items"), Some(&Value::Seq(vec![])));
    }

    #[test]
    fn quoted_scalars_and_escapes() {
        let doc =
            parse("a: \"hello: world\"\nb: 'single # not comment'\nc: \"line\\nbreak\"\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_str(), Some("hello: world"));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("single # not comment"));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("line\nbreak"));
    }

    #[test]
    fn flow_scalar_with_escaped_quote_parses() {
        // Regression: the closing-quote scan used to stop at the escaped
        // quote and report UnterminatedString for `k: ["a\"b", 1]`.
        let doc = parse("k: [\"a\\\"b\", 1]\n").unwrap();
        let seq = doc.get("k").unwrap().as_seq().unwrap();
        assert_eq!(seq[0], Value::Str("a\"b".into()));
        assert_eq!(seq[1], Value::Int(1));
    }

    #[test]
    fn flow_mapping_key_with_colon_inside_quotes() {
        // Regression: the entry used to split at the first `:` even inside
        // quotes, mis-parsing `m: {"a:b": 1}` as key `"a` / value `b": 1`.
        let doc = parse("m: {\"a:b\": 1}\n").unwrap();
        let m = doc.get("m").unwrap();
        assert_eq!(m.get("a:b"), Some(&Value::Int(1)));
        assert_eq!(m.as_map().map(|m| m.len()), Some(1));
    }

    #[test]
    fn plain_flow_key_with_interior_quote_chars_stays_plain() {
        // A quote only opens a quoted scalar at the start of the key; an
        // apostrophe mid-token (`it's`) is a literal character.
        let doc = parse("m: {it's: 1, don\"t: 2}\n").unwrap();
        let m = doc.get("m").unwrap();
        assert_eq!(m.get("it's"), Some(&Value::Int(1)));
        assert_eq!(m.get("don\"t"), Some(&Value::Int(2)));
    }

    #[test]
    fn flow_mapping_value_with_escaped_quote_and_comma() {
        let doc = parse("m: {k: \"a\\\"b, c\", n: 2}\n").unwrap();
        let m = doc.get("m").unwrap();
        assert_eq!(m.get("k").unwrap().as_str(), Some("a\"b, c"));
        assert_eq!(m.get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn escaped_quote_does_not_confuse_comment_stripping() {
        // `\"` must not toggle the quote tracker, or the ` # ` inside the
        // later scalar would be stripped as a comment.
        let doc = parse("k: [\"a\\\"b\", \"x # y\"]\n").unwrap();
        let seq = doc.get("k").unwrap().as_seq().unwrap();
        assert_eq!(seq[1], Value::Str("x # y".into()));
    }

    #[test]
    fn comments_are_stripped() {
        let doc = parse("a: 1 # trailing\n# full line\nb: 2\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Int(1)));
        assert_eq!(doc.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn hash_inside_plain_scalar_not_a_comment() {
        let doc = parse("path: /group#1/grid\n").unwrap();
        assert_eq!(doc.get("path").unwrap().as_str(), Some("/group#1/grid"));
    }

    #[test]
    fn leading_document_marker_allowed() {
        let doc = parse("---\na: 1\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Int(1)));
    }

    #[test]
    fn multiple_documents_rejected() {
        let err = parse("a: 1\n---\nb: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn duplicate_keys_rejected_in_nested_block_mappings() {
        let err = parse("outer:\n  inner:\n    a: 1\n    a: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        assert_eq!((err.line(), err.column()), (4, 5));
        // Also inside mappings that are sequence items.
        let err = parse("tasks:\n  - func: x\n    func: y\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        assert_eq!(err.line(), 3);
        // Same key in *sibling* mappings is fine.
        assert!(parse("a:\n  k: 1\nb:\n  k: 2\n").is_ok());
    }

    #[test]
    fn duplicate_keys_rejected_in_flow_mappings() {
        // Regression: the old parser silently kept the last value.
        let err = parse("m: {a: 1, a: 2}\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        // Column of the second `a`.
        assert_eq!((err.line(), err.column()), (1, 11));
        // Nested flow mappings check their own scope only.
        assert!(parse("m: {a: {a: 1}}\n").is_ok());
        let err = parse("m: {o: {x: 1, x: 2}}\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        assert_eq!((err.line(), err.column()), (1, 15));
    }

    #[test]
    fn tabs_in_indentation_are_a_typed_error() {
        let err = parse("a:\n\tb: 1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TabIndent);
        // Column of the tab itself, including tabs after spaces.
        assert_eq!((err.line(), err.column()), (2, 1));
        let err = parse("a:\n  \tb: 1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TabIndent);
        assert_eq!((err.line(), err.column()), (2, 3));
    }

    #[test]
    fn unterminated_string_rejected() {
        let err = parse("a: \"oops\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedString);
        // Column points at the opening quote.
        assert_eq!(err.column(), 4);
    }

    #[test]
    fn unterminated_flow_rejected() {
        let err = parse("a: [1, 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedFlow);
        // Column points at the opening bracket.
        assert_eq!(err.column(), 4);
    }

    #[test]
    fn errors_carry_columns() {
        // Duplicate key: column of the key on the offending line.
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 1));
        // Bad indentation: column of the over-indented content.
        let err = parse("a: 1\n   b: 2\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 4));
        // Tab in indentation: column of the tab itself.
        let err = parse("a:\n\tb: 1\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 1));
        // Unterminated string in a nested value: column of its quote.
        let err = parse("outer:\n  inner: \"x\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 10));
        // Stray closer in a flow sequence: column of the junk.
        let err = parse("a: [1}, 2]\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 6));
        // Block scalar: column of the indicator.
        let err = parse("a: |\n  text\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 4));
    }

    #[test]
    fn mismatched_flow_closer_terminates_with_an_error() {
        // Regression: a `}` where a sequence expected `,`/`]` used to
        // re-parse as an empty item forever (unbounded memory, no progress).
        // Found by the arbitrary-text property test at high case counts.
        let err = parse("[BX`JKC=e(}+|!&*Z'k").unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::Other | ErrorKind::UnterminatedFlow
        ));
        assert!(parse("a: [1}, 2]\n").is_err());
        assert!(parse("a: {k: 1] }\n").is_err());
        // Well-formed flow text keeps parsing.
        assert!(parse("a: [1, 2]\nb: {k: 1}\n").is_ok());
    }

    #[test]
    fn block_scalars_rejected() {
        let err = parse("a: |\n  text\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn anchors_rejected() {
        let err = parse("a: &anchor 1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn bad_indentation_in_mapping_rejected() {
        let err = parse("a: 1\n   b: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadIndentation);
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn colon_in_value_without_space_is_part_of_scalar() {
        let doc = parse("url: http://example.org\n").unwrap();
        assert_eq!(doc.get("url").unwrap().as_str(), Some("http://example.org"));
    }

    #[test]
    fn keys_with_quotes() {
        let doc = parse("\"quoted key\": 1\n").unwrap();
        assert_eq!(doc.get("quoted key"), Some(&Value::Int(1)));
    }

    #[test]
    fn deep_wilkins_like_nesting() {
        let src = "\
tasks:
  - func: producer
    nprocs: 3
    outports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
          - name: /group1/particles
            file: 0
            memory: 1
";
        let doc = parse(src).unwrap();
        let dsets = doc.lookup_path("tasks/0/outports/0/dsets").unwrap();
        assert_eq!(dsets.as_seq().unwrap().len(), 2);
        assert_eq!(
            doc.lookup_path("tasks/0/outports/0/dsets/1/name")
                .unwrap()
                .as_str(),
            Some("/group1/particles")
        );
    }

    #[test]
    fn adios2_style_engine_parameters() {
        let src = "\
io:
  name: SimulationOutput
  engine:
    type: SST
    parameters:
      RendezvousReaderCount: 1
      QueueLimit: 5
variables:
  - name: array
    shape: [4, 50]
    type: float
";
        let doc = parse(src).unwrap();
        assert_eq!(
            doc.lookup_path("io/engine/type").unwrap().as_str(),
            Some("SST")
        );
        assert_eq!(
            doc.lookup_path("io/engine/parameters/QueueLimit"),
            Some(&Value::Int(5))
        );
        assert_eq!(
            doc.lookup_path("variables/0/shape/1"),
            Some(&Value::Int(50))
        );
    }

    // ---- zero-copy / span behaviour ------------------------------------

    /// True when `slice` points into `buffer`'s allocation.
    fn is_slice_of(slice: &str, buffer: &str) -> bool {
        let b = buffer.as_ptr() as usize;
        let s = slice.as_ptr() as usize;
        s >= b && s + slice.len() <= b + buffer.len()
    }

    #[test]
    fn plain_scalars_borrow_from_the_source_buffer() {
        let src = "name: workflow\npath: /group1/grid\nitems: [alpha, beta]\n".to_owned();
        let doc = parse_document(&src).unwrap();
        for path in ["name", "path"] {
            let node = doc.root().get(path).unwrap();
            match &node.value {
                ValueRef::Str(Cow::Borrowed(s)) => assert!(is_slice_of(s, &src), "{path}"),
                other => panic!("expected borrowed scalar for `{path}`, got {other:?}"),
            }
        }
        let items = doc.root().get("items").unwrap().as_seq().unwrap();
        for item in items {
            match &item.value {
                ValueRef::Str(Cow::Borrowed(s)) => assert!(is_slice_of(s, &src)),
                other => panic!("expected borrowed flow scalar, got {other:?}"),
            }
        }
    }

    #[test]
    fn quoted_scalars_borrow_unless_escaped() {
        let src = "a: \"plain text\"\nb: 'single'\nc: \"needs\\nunescape\"\n".to_owned();
        let doc = parse_document(&src).unwrap();
        match &doc.root().get("a").unwrap().value {
            ValueRef::Str(Cow::Borrowed(s)) => {
                assert_eq!(*s, "plain text");
                assert!(is_slice_of(s, &src));
            }
            other => panic!("expected borrowed double-quoted scalar, got {other:?}"),
        }
        match &doc.root().get("b").unwrap().value {
            ValueRef::Str(Cow::Borrowed(s)) => assert!(is_slice_of(s, &src)),
            other => panic!("expected borrowed single-quoted scalar, got {other:?}"),
        }
        match &doc.root().get("c").unwrap().value {
            ValueRef::Str(Cow::Owned(s)) => assert_eq!(s, "needs\nunescape"),
            other => panic!("expected owned unescaped scalar, got {other:?}"),
        }
    }

    #[test]
    fn mapping_keys_are_interned_once() {
        let src = "\
tasks:
  - func: producer
    nprocs: 3
  - func: consumer
    nprocs: 1
";
        let doc = parse_document(src).unwrap();
        // Distinct keys: tasks, func, nprocs — `func`/`nprocs` repeat but
        // intern to one symbol each.
        assert_eq!(doc.interner().len(), 3);
        let tasks = doc.root().get("tasks").unwrap().as_seq().unwrap();
        let sym_of = |n: &Node<'_>, key: &str| {
            n.as_map()
                .unwrap()
                .iter()
                .find(|e| e.key == key)
                .unwrap()
                .key_sym
        };
        assert_eq!(sym_of(&tasks[0], "func"), sym_of(&tasks[1], "func"));
        assert_ne!(sym_of(&tasks[0], "func"), sym_of(&tasks[0], "nprocs"));
        assert_eq!(doc.interner().resolve(sym_of(&tasks[0], "func")), "func");
    }

    #[test]
    fn nodes_carry_spans() {
        let src = "a: 1\nb:\n  - x\n  - y\nc: [1, 2]\n";
        let doc = parse_document(src).unwrap();
        let root = doc.root();
        assert_eq!(root.span.position(), (1, 1));
        assert_eq!(root.get("a").unwrap().span, Span::new(1, 4, 1));
        let b = root.get("b").unwrap();
        assert_eq!(b.span.position(), (3, 3));
        assert_eq!(b.as_seq().unwrap()[1].span.position(), (4, 5));
        let c = root.get("c").unwrap();
        assert_eq!(c.span, Span::new(5, 4, 6));
        assert_eq!(c.as_seq().unwrap()[0].span.position(), (5, 5));
        assert_eq!(c.as_seq().unwrap()[1].span.position(), (5, 8));
        let key_spans: Vec<Span> = root.as_map().unwrap().iter().map(|e| e.key_span).collect();
        assert_eq!(key_spans[0], Span::new(1, 1, 1));
        assert_eq!(key_spans[1], Span::new(2, 1, 1));
        assert_eq!(key_spans[2], Span::new(5, 1, 1));
    }

    #[test]
    fn spans_are_in_document_order() {
        let src = "\
tasks:
  - func: producer
    nprocs: 3
    outports:
      - filename: outfile.h5
        dsets: [a, b]
meta: {owner: sim, level: 2}
";
        let doc = parse_document(src).unwrap();
        let spans = doc.root().spans();
        let positions: Vec<_> = spans.iter().map(Span::position).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted, "pre-order spans must be non-decreasing");
    }

    #[test]
    fn owned_and_borrowed_apis_agree() {
        let src = "\
io:
  engine: {type: SST, params: [1, 2.5, true, null]}
  name: \"Simulation Output\"
tasks:
  - func: producer
";
        let via_borrowed = parse_document(src).unwrap().into_owned();
        let via_owned = parse(src).unwrap();
        assert_eq!(via_borrowed, via_owned);
    }
}
