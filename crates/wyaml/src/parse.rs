//! The block-structured parser for the supported YAML subset.

use crate::error::{Error, ErrorKind};
use crate::value::{Map, Value};

/// Parse a YAML-subset document into a [`Value`].
///
/// An empty document (only comments/blank lines) parses to [`Value::Null`].
pub fn parse(source: &str) -> Result<Value, Error> {
    let lines = preprocess(source)?;
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut parser = Parser { lines, pos: 0 };
    let root_indent = parser.lines[0].indent;
    let value = parser.parse_node(root_indent)?;
    if parser.pos < parser.lines.len() {
        let line = &parser.lines[parser.pos];
        return Err(Error::at(
            ErrorKind::BadIndentation,
            line.number,
            line.indent + 1,
            format!("unexpected content `{}` after document root", line.text),
        ));
    }
    Ok(value)
}

#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    number: usize,
}

fn preprocess(source: &str) -> Result<Vec<Line>, Error> {
    let mut out = Vec::new();
    let mut seen_doc_marker = false;
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let stripped = strip_comment(raw);
        let text = stripped.trim_end();
        if text.trim().is_empty() {
            continue;
        }
        let trimmed = text.trim_start();
        if trimmed == "---" {
            if seen_doc_marker || !out.is_empty() {
                return Err(Error::at(
                    ErrorKind::Unsupported,
                    number,
                    text.len() - trimmed.len() + 1,
                    "multiple YAML documents are not supported",
                ));
            }
            seen_doc_marker = true;
            continue;
        }
        if trimmed == "..." {
            break;
        }
        let indent_str: String = text
            .chars()
            .take_while(|c| *c == ' ' || *c == '\t')
            .collect();
        if let Some(tab) = indent_str.find('\t') {
            return Err(Error::at(
                ErrorKind::BadIndentation,
                number,
                tab + 1,
                "tabs are not allowed in indentation",
            ));
        }
        out.push(Line {
            indent: indent_str.len(),
            text: trimmed.to_owned(),
            number,
        });
    }
    Ok(out)
}

/// Remove a trailing `#` comment that is not inside a quoted scalar.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            // An escaped character inside a double-quoted scalar (e.g. `\"`)
            // must not toggle the quote tracker.
            b'\\' if in_double => i += 1,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            // YAML only treats '#' as a comment when at line start or
            // preceded by whitespace.
            b'#' if !in_single && !in_double && (i == 0 || bytes[i - 1].is_ascii_whitespace()) => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    fn current(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    /// Parse the node starting at the current line, which must sit at
    /// exactly `indent`.
    fn parse_node(&mut self, indent: usize) -> Result<Value, Error> {
        let line = match self.current() {
            Some(l) => l.clone(),
            None => return Ok(Value::Null),
        };
        if line.text.starts_with('-')
            && (line.text == "-" || line.text.starts_with("- ") || line.text == "---")
        {
            self.parse_sequence(indent)
        } else if find_mapping_colon(&line.text).is_some() {
            self.parse_mapping(indent)
        } else {
            // Single scalar document / nested scalar.
            self.pos += 1;
            parse_scalar(&line.text, line.number, line.indent + 1)
        }
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Value, Error> {
        let mut map = Map::new();
        while let Some(line) = self.current().cloned() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(Error::at(
                    ErrorKind::BadIndentation,
                    line.number,
                    line.indent + 1,
                    format!("unexpected indent {} (expected {})", line.indent, indent),
                ));
            }
            if line.text.starts_with("- ") || line.text == "-" {
                break;
            }
            let colon = find_mapping_colon(&line.text).ok_or_else(|| {
                Error::at(
                    ErrorKind::ExpectedMapping,
                    line.number,
                    line.indent + 1,
                    format!("`{}` is not a `key: value` entry", line.text),
                )
            })?;
            let raw_key = line.text[..colon].trim();
            // Anchors/aliases/tags are only syntax on *plain* keys; a quoted
            // key beginning with `&` is just a string.
            if raw_key.starts_with(['&', '*', '!']) {
                return Err(Error::at(
                    ErrorKind::Unsupported,
                    line.number,
                    line.indent + 1,
                    "anchors, aliases and tags are not supported",
                ));
            }
            let key = unquote_key(raw_key);
            if map.contains_key(&key) {
                return Err(Error::at(
                    ErrorKind::DuplicateKey,
                    line.number,
                    line.indent + 1,
                    format!("key `{key}` already defined in this mapping"),
                ));
            }
            let after = &line.text[colon + 1..];
            let rest = after.trim();
            // Column of the value's first character: indent + key text up to
            // the colon + the colon itself + leading whitespace, 1-based.
            let value_col = line.indent + colon + 1 + (after.len() - after.trim_start().len()) + 1;
            self.pos += 1;
            let value = if rest.is_empty() {
                match self.current() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        self.parse_node(child_indent)?
                    }
                    // A sequence nested under a key may sit at the same
                    // indent as the key (common YAML style).
                    Some(next)
                        if next.indent == indent
                            && (next.text.starts_with("- ") || next.text == "-") =>
                    {
                        self.parse_sequence(indent)?
                    }
                    _ => Value::Null,
                }
            } else {
                parse_scalar(rest, line.number, value_col)?
            };
            map.insert(key, value);
        }
        Ok(Value::Map(map))
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Value, Error> {
        let mut items = Vec::new();
        while let Some(line) = self.current().cloned() {
            if line.indent != indent || !(line.text.starts_with("- ") || line.text == "-") {
                if line.indent > indent {
                    return Err(Error::at(
                        ErrorKind::BadIndentation,
                        line.number,
                        line.indent + 1,
                        format!(
                            "unexpected indent {} in sequence (expected {})",
                            line.indent, indent
                        ),
                    ));
                }
                break;
            }
            let content = if line.text == "-" {
                ""
            } else {
                line.text[1..].trim_start()
            };
            if content.is_empty() {
                self.pos += 1;
                let value = match self.current() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        self.parse_node(child_indent)?
                    }
                    _ => Value::Null,
                };
                items.push(value);
            } else {
                // Inline content: re-home it at the content column so a
                // mapping started on the dash line can continue on the
                // following lines.
                let content_indent = indent + (line.text.len() - content.len());
                self.lines[self.pos] = Line {
                    indent: content_indent,
                    text: content.to_owned(),
                    number: line.number,
                };
                let value = self.parse_node(content_indent)?;
                items.push(value);
            }
        }
        Ok(Value::Seq(items))
    }
}

/// Locate the colon that separates a mapping key from its value: the first
/// `:` outside quotes that is followed by a space or ends the line.
fn find_mapping_colon(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0usize;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_double => escaped = true,
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'[' | b'{' if !in_single && !in_double => depth += 1,
            b']' | b'}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            b':' if !in_single
                && !in_double
                && depth == 0
                && (i + 1 == bytes.len() || bytes[i + 1].is_ascii_whitespace()) =>
            {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

fn unquote_key(key: &str) -> String {
    let k = key.trim();
    // A double-quoted key must be unescaped the way quoted scalars are
    // (`"a\"b"` is the key `a"b`), but only when the opening quote's real
    // closing quote is the final character — otherwise the quotes are
    // literal content of a plain key.
    if k.len() >= 2 && k.starts_with('"') && find_closing_quote(k) == Some(k.len() - 1) {
        if let Ok(Value::Str(s)) = parse_quoted(k, 0, 1) {
            return s;
        }
    }
    if k.len() >= 2 && k.starts_with('\'') && k.ends_with('\'') {
        return k[1..k.len() - 1].to_owned();
    }
    if k.starts_with('"') && k.ends_with('"') && k.len() >= 2 {
        return k[1..k.len() - 1].to_owned();
    }
    k.to_owned()
}

/// Parse an inline scalar or flow collection.  `col` is the 1-based byte
/// column of `text`'s first character in the source line.
fn parse_scalar(text: &str, line: usize, col: usize) -> Result<Value, Error> {
    let t = text.trim();
    let col = col + (text.len() - text.trim_start().len());
    if t.starts_with('[') || t.starts_with('{') {
        let (value, rest) = parse_flow(t, line, col)?;
        if !rest.trim().is_empty() {
            return Err(Error::at(
                ErrorKind::Other,
                line,
                col + (t.len() - rest.trim_start().len()),
                format!("trailing content `{rest}` after flow collection"),
            ));
        }
        return Ok(value);
    }
    if t.starts_with('"') || t.starts_with('\'') {
        return parse_quoted(t, line, col);
    }
    if t == "|" || t == ">" || t.starts_with("| ") || t.starts_with("> ") {
        return Err(Error::at(
            ErrorKind::Unsupported,
            line,
            col,
            "block scalars (`|`, `>`) are not supported",
        ));
    }
    if t.starts_with('&') || t.starts_with('*') || t.starts_with('!') {
        return Err(Error::at(
            ErrorKind::Unsupported,
            line,
            col,
            "anchors, aliases and tags are not supported",
        ));
    }
    Ok(Value::from_plain_scalar(t))
}

fn parse_quoted(t: &str, line: usize, col: usize) -> Result<Value, Error> {
    let quote = t.chars().next().unwrap();
    let inner = &t[1..];
    let mut out = String::new();
    let mut chars = inner.chars();
    let mut closed = false;
    while let Some(c) = chars.next() {
        if c == quote {
            closed = true;
            break;
        }
        if quote == '"' && c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    if !closed {
        return Err(Error::at(
            ErrorKind::UnterminatedString,
            line,
            col,
            format!("missing closing `{quote}`"),
        ));
    }
    Ok(Value::Str(out))
}

/// Parse a flow collection starting at the beginning of `t`, returning the
/// value and the remaining unparsed text.  `col` is the 1-based column of
/// `t`'s first character; error columns are derived from how much of `t`
/// was consumed when the problem surfaced.
fn parse_flow(t: &str, line: usize, col: usize) -> Result<(Value, &str), Error> {
    let col = col + (t.len() - t.trim_start().len());
    let t = t.trim_start();
    // Column of a suffix of `t` still waiting to be parsed.
    let col_of = |rest: &str| col + (t.len() - rest.len());
    if let Some(rest) = t.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        loop {
            if let Some(r) = rest.strip_prefix(']') {
                return Ok((Value::Seq(items), r));
            }
            if rest.is_empty() {
                return Err(Error::at(
                    ErrorKind::UnterminatedFlow,
                    line,
                    col,
                    "missing `]`",
                ));
            }
            let (item, r) = parse_flow_item(rest, line, col_of(rest))?;
            items.push(item);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() && !rest.starts_with(']') {
                // A stray `}` (or any other junk) where `,`/`]` is expected
                // would otherwise re-parse as an empty item forever.
                return Err(Error::at(
                    ErrorKind::Other,
                    line,
                    col_of(rest),
                    format!("expected `,` or `]` in flow sequence, found `{rest}`"),
                ));
            }
        }
    }
    if let Some(rest) = t.strip_prefix('{') {
        let mut map = Map::new();
        let mut rest = rest.trim_start();
        loop {
            if let Some(r) = rest.strip_prefix('}') {
                return Ok((Value::Map(map), r));
            }
            if rest.is_empty() {
                return Err(Error::at(
                    ErrorKind::UnterminatedFlow,
                    line,
                    col,
                    "missing `}`",
                ));
            }
            let colon = find_flow_colon(rest).ok_or_else(|| {
                Error::at(
                    ErrorKind::ExpectedMapping,
                    line,
                    col_of(rest),
                    "flow mapping entry missing `:`",
                )
            })?;
            let raw_key = rest[..colon].trim();
            let key = if raw_key.starts_with('"') || raw_key.starts_with('\'') {
                match parse_quoted(raw_key, line, col_of(rest))? {
                    Value::Str(s) => s,
                    _ => unreachable!("parse_quoted always yields a string"),
                }
            } else {
                unquote_key(raw_key)
            };
            let after = rest[colon + 1..].trim_start();
            if after.starts_with('}') {
                map.insert(key, Value::Null);
                rest = after;
                continue;
            }
            let (val, r) = parse_flow_item(after, line, col_of(after))?;
            map.insert(key, val);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() && !rest.starts_with('}') {
                return Err(Error::at(
                    ErrorKind::Other,
                    line,
                    col_of(rest),
                    format!("expected `,` or `}}` in flow mapping, found `{rest}`"),
                ));
            }
        }
    }
    Err(Error::at(
        ErrorKind::Other,
        line,
        col,
        "expected flow collection",
    ))
}

fn parse_flow_item(t: &str, line: usize, col: usize) -> Result<(Value, &str), Error> {
    let col = col + (t.len() - t.trim_start().len());
    let t = t.trim_start();
    if t.starts_with('[') || t.starts_with('{') {
        return parse_flow(t, line, col);
    }
    if t.starts_with('"') || t.starts_with('\'') {
        let quote = t.chars().next().unwrap();
        // Find the closing quote, honouring backslash escapes so a scalar
        // like `"a\"b"` does not terminate at the escaped quote.
        if let Some(end) = find_closing_quote(t) {
            let value = parse_quoted(&t[..=end], line, col)?;
            return Ok((value, &t[end + 1..]));
        }
        return Err(Error::at(
            ErrorKind::UnterminatedString,
            line,
            col,
            format!("missing closing `{quote}` in flow scalar"),
        ));
    }
    // Plain flow scalar ends at ',', ']' or '}'.
    let end = t.find([',', ']', '}']).unwrap_or(t.len());
    Ok((Value::from_plain_scalar(&t[..end]), &t[end..]))
}

/// Byte index of the quote closing the quoted scalar that starts at `t[0]`,
/// skipping backslash-escaped characters inside double quotes.
fn find_closing_quote(t: &str) -> Option<usize> {
    let bytes = t.as_bytes();
    let quote = *bytes.first()?;
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'\\' && quote == b'"' {
            i += 2;
        } else if bytes[i] == quote {
            return Some(i);
        } else {
            i += 1;
        }
    }
    None
}

/// Locate the colon separating a flow-mapping key from its value: the first
/// `:` after the key scalar.  A quoted key can only *start* at the beginning
/// of the entry; quote characters later in a plain key (`it's`) are literal.
fn find_flow_colon(t: &str) -> Option<usize> {
    let bytes = t.as_bytes();
    let mut i = 0;
    if matches!(bytes.first(), Some(b'"') | Some(b'\'')) {
        i = find_closing_quote(t)? + 1;
    }
    bytes[i..].iter().position(|&b| b == b':').map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_comment_only_documents_are_null() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# just a comment\n\n").unwrap(), Value::Null);
    }

    #[test]
    fn scalar_document() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("hello").unwrap(), Value::Str("hello".into()));
    }

    #[test]
    fn simple_mapping() {
        let doc = parse("a: 1\nb: two\nc: true\nd:\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Int(1)));
        assert_eq!(doc.get("b"), Some(&Value::Str("two".into())));
        assert_eq!(doc.get("c"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Value::Null));
    }

    #[test]
    fn nested_mapping() {
        let doc = parse("outer:\n  inner:\n    leaf: 5\n").unwrap();
        assert_eq!(doc.lookup_path("outer/inner/leaf"), Some(&Value::Int(5)));
    }

    #[test]
    fn sequence_of_scalars() {
        let doc = parse("- 1\n- 2\n- three\n").unwrap();
        assert_eq!(
            doc,
            Value::Seq(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Str("three".into())
            ])
        );
    }

    #[test]
    fn sequence_of_mappings_with_inline_first_key() {
        let doc = parse("- func: producer\n  nprocs: 3\n- func: consumer\n  nprocs: 1\n").unwrap();
        let seq = doc.as_seq().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].get("nprocs"), Some(&Value::Int(3)));
        assert_eq!(seq[1].get("func").unwrap().as_str(), Some("consumer"));
    }

    #[test]
    fn sequence_under_key_at_same_indent() {
        let doc = parse("tasks:\n- a\n- b\n").unwrap();
        let tasks = doc.get("tasks").unwrap().as_seq().unwrap();
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn sequence_under_key_indented() {
        let doc = parse("tasks:\n  - a\n  - b\nother: 1\n").unwrap();
        assert_eq!(doc.get("tasks").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(doc.get("other"), Some(&Value::Int(1)));
    }

    #[test]
    fn nested_sequences_via_dash_dash() {
        let doc = parse("-\n  - 1\n  - 2\n- 3\n").unwrap();
        let seq = doc.as_seq().unwrap();
        assert_eq!(seq[0].as_seq().unwrap().len(), 2);
        assert_eq!(seq[1], Value::Int(3));
    }

    #[test]
    fn flow_sequence_and_mapping() {
        let doc = parse("dims: [64, 64, 64]\nmeta: {owner: sim, level: 2}\n").unwrap();
        assert_eq!(
            doc.get("dims").unwrap().as_seq().unwrap(),
            &[Value::Int(64), Value::Int(64), Value::Int(64)]
        );
        assert_eq!(doc.lookup_path("meta/owner").unwrap().as_str(), Some("sim"));
        assert_eq!(doc.lookup_path("meta/level"), Some(&Value::Int(2)));
    }

    #[test]
    fn empty_flow_collections() {
        let doc = parse("grid: {}\nitems: []\n").unwrap();
        assert_eq!(doc.get("grid"), Some(&Value::Map(Map::new())));
        assert_eq!(doc.get("items"), Some(&Value::Seq(vec![])));
    }

    #[test]
    fn quoted_scalars_and_escapes() {
        let doc =
            parse("a: \"hello: world\"\nb: 'single # not comment'\nc: \"line\\nbreak\"\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_str(), Some("hello: world"));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("single # not comment"));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("line\nbreak"));
    }

    #[test]
    fn flow_scalar_with_escaped_quote_parses() {
        // Regression: the closing-quote scan used to stop at the escaped
        // quote and report UnterminatedString for `k: ["a\"b", 1]`.
        let doc = parse("k: [\"a\\\"b\", 1]\n").unwrap();
        let seq = doc.get("k").unwrap().as_seq().unwrap();
        assert_eq!(seq[0], Value::Str("a\"b".into()));
        assert_eq!(seq[1], Value::Int(1));
    }

    #[test]
    fn flow_mapping_key_with_colon_inside_quotes() {
        // Regression: the entry used to split at the first `:` even inside
        // quotes, mis-parsing `m: {"a:b": 1}` as key `"a` / value `b": 1`.
        let doc = parse("m: {\"a:b\": 1}\n").unwrap();
        let m = doc.get("m").unwrap();
        assert_eq!(m.get("a:b"), Some(&Value::Int(1)));
        assert_eq!(m.as_map().map(|m| m.len()), Some(1));
    }

    #[test]
    fn plain_flow_key_with_interior_quote_chars_stays_plain() {
        // A quote only opens a quoted scalar at the start of the key; an
        // apostrophe mid-token (`it's`) is a literal character.
        let doc = parse("m: {it's: 1, don\"t: 2}\n").unwrap();
        let m = doc.get("m").unwrap();
        assert_eq!(m.get("it's"), Some(&Value::Int(1)));
        assert_eq!(m.get("don\"t"), Some(&Value::Int(2)));
    }

    #[test]
    fn flow_mapping_value_with_escaped_quote_and_comma() {
        let doc = parse("m: {k: \"a\\\"b, c\", n: 2}\n").unwrap();
        let m = doc.get("m").unwrap();
        assert_eq!(m.get("k").unwrap().as_str(), Some("a\"b, c"));
        assert_eq!(m.get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn escaped_quote_does_not_confuse_comment_stripping() {
        // `\"` must not toggle the quote tracker, or the ` # ` inside the
        // later scalar would be stripped as a comment.
        let doc = parse("k: [\"a\\\"b\", \"x # y\"]\n").unwrap();
        let seq = doc.get("k").unwrap().as_seq().unwrap();
        assert_eq!(seq[1], Value::Str("x # y".into()));
    }

    #[test]
    fn comments_are_stripped() {
        let doc = parse("a: 1 # trailing\n# full line\nb: 2\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Int(1)));
        assert_eq!(doc.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn hash_inside_plain_scalar_not_a_comment() {
        let doc = parse("path: /group#1/grid\n").unwrap();
        assert_eq!(doc.get("path").unwrap().as_str(), Some("/group#1/grid"));
    }

    #[test]
    fn leading_document_marker_allowed() {
        let doc = parse("---\na: 1\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Value::Int(1)));
    }

    #[test]
    fn multiple_documents_rejected() {
        let err = parse("a: 1\n---\nb: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn tabs_in_indentation_rejected() {
        let err = parse("a:\n\tb: 1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadIndentation);
    }

    #[test]
    fn unterminated_string_rejected() {
        let err = parse("a: \"oops\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedString);
        // Column points at the opening quote.
        assert_eq!(err.column, Some(4));
    }

    #[test]
    fn unterminated_flow_rejected() {
        let err = parse("a: [1, 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedFlow);
        // Column points at the opening bracket.
        assert_eq!(err.column, Some(4));
    }

    #[test]
    fn errors_carry_columns() {
        // Duplicate key: column of the key on the offending line.
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert_eq!((err.line, err.column), (2, Some(1)));
        // Bad indentation: column of the over-indented content.
        let err = parse("a: 1\n   b: 2\n").unwrap_err();
        assert_eq!((err.line, err.column), (2, Some(4)));
        // Tab in indentation: column of the tab itself.
        let err = parse("a:\n\tb: 1\n").unwrap_err();
        assert_eq!((err.line, err.column), (2, Some(1)));
        // Unterminated string in a nested value: column of its quote.
        let err = parse("outer:\n  inner: \"x\n").unwrap_err();
        assert_eq!((err.line, err.column), (2, Some(10)));
        // Stray closer in a flow sequence: column of the junk.
        let err = parse("a: [1}, 2]\n").unwrap_err();
        assert_eq!((err.line, err.column), (1, Some(6)));
        // Block scalar: column of the indicator.
        let err = parse("a: |\n  text\n").unwrap_err();
        assert_eq!((err.line, err.column), (1, Some(4)));
    }

    #[test]
    fn mismatched_flow_closer_terminates_with_an_error() {
        // Regression: a `}` where a sequence expected `,`/`]` used to
        // re-parse as an empty item forever (unbounded memory, no progress).
        // Found by the arbitrary-text property test at high case counts.
        let err = parse("[BX`JKC=e(}+|!&*Z'k").unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::Other | ErrorKind::UnterminatedFlow
        ));
        assert!(parse("a: [1}, 2]\n").is_err());
        assert!(parse("a: {k: 1] }\n").is_err());
        // Well-formed flow text keeps parsing.
        assert!(parse("a: [1, 2]\nb: {k: 1}\n").is_ok());
    }

    #[test]
    fn block_scalars_rejected() {
        let err = parse("a: |\n  text\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn anchors_rejected() {
        let err = parse("a: &anchor 1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn bad_indentation_in_mapping_rejected() {
        let err = parse("a: 1\n   b: 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadIndentation);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn colon_in_value_without_space_is_part_of_scalar() {
        let doc = parse("url: http://example.org\n").unwrap();
        assert_eq!(doc.get("url").unwrap().as_str(), Some("http://example.org"));
    }

    #[test]
    fn keys_with_quotes() {
        let doc = parse("\"quoted key\": 1\n").unwrap();
        assert_eq!(doc.get("quoted key"), Some(&Value::Int(1)));
    }

    #[test]
    fn deep_wilkins_like_nesting() {
        let src = "\
tasks:
  - func: producer
    nprocs: 3
    outports:
      - filename: outfile.h5
        dsets:
          - name: /group1/grid
            file: 0
            memory: 1
          - name: /group1/particles
            file: 0
            memory: 1
";
        let doc = parse(src).unwrap();
        let dsets = doc.lookup_path("tasks/0/outports/0/dsets").unwrap();
        assert_eq!(dsets.as_seq().unwrap().len(), 2);
        assert_eq!(
            doc.lookup_path("tasks/0/outports/0/dsets/1/name")
                .unwrap()
                .as_str(),
            Some("/group1/particles")
        );
    }

    #[test]
    fn adios2_style_engine_parameters() {
        let src = "\
io:
  name: SimulationOutput
  engine:
    type: SST
    parameters:
      RendezvousReaderCount: 1
      QueueLimit: 5
variables:
  - name: array
    shape: [4, 50]
    type: float
";
        let doc = parse(src).unwrap();
        assert_eq!(
            doc.lookup_path("io/engine/type").unwrap().as_str(),
            Some("SST")
        );
        assert_eq!(
            doc.lookup_path("io/engine/parameters/QueueLimit"),
            Some(&Value::Int(5))
        );
        assert_eq!(
            doc.lookup_path("variables/0/shape/1"),
            Some(&Value::Int(50))
        );
    }
}
