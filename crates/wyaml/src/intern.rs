//! A small string interner for mapping keys.
//!
//! Workflow configuration files repeat the same handful of keys over and
//! over (`tasks`, `func`, `nprocs`, `filename`, `dsets`, …).  The parser
//! interns every mapping key it sees into one table per document, so
//!
//! * duplicate-key detection inside a mapping compares `u32` symbols
//!   instead of re-comparing strings, and
//! * callers of the borrowed API can ask how many *distinct* keys a
//!   document uses ([`Interner::len`]) and resolve any
//!   [`Symbol`] back to its text without touching the nodes.
//!
//! Keys that are plain (or quoted without escapes) are interned as
//! borrowed slices of the input; only keys that required unescaping
//! (`"a\"b"`) store an owned copy.

use std::borrow::Cow;

/// An interned key: a dense index into the document's [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index (0-based, in first-seen order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a over the key bytes.  Keys are short and a document only ever
/// holds a handful of distinct ones, so a cheap hash plus a linear scan of
/// packed `u64`s beats a general-purpose hash map on this workload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Interns mapping keys for one parsed document.
///
/// `hashes[i]` is the FNV-1a hash of `strings[i]`; lookup scans the hash
/// column and only compares text on a hash hit.
#[derive(Debug, Default)]
pub struct Interner<'a> {
    strings: Vec<Cow<'a, str>>,
    hashes: Vec<u64>,
}

impl<'a> Interner<'a> {
    /// An empty interner.
    pub fn new() -> Interner<'a> {
        Interner::default()
    }

    /// Intern `key`, returning the same [`Symbol`] for equal text no matter
    /// how (or where) it appeared in the document.
    pub fn intern(&mut self, key: Cow<'a, str>) -> Symbol {
        let hash = fnv1a(key.as_bytes());
        for (i, &existing) in self.hashes.iter().enumerate() {
            if existing == hash && self.strings[i] == key {
                return Symbol(i as u32);
            }
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(key);
        self.hashes.push(hash);
        sym
    }

    /// The text behind a symbol.  Symbols are only valid for the interner
    /// that produced them.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_text_interns_to_one_symbol() {
        let mut i = Interner::new();
        let a = i.intern(Cow::Borrowed("tasks"));
        let b = i.intern(Cow::Owned("tasks".to_owned()));
        let c = i.intern(Cow::Borrowed("func"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "tasks");
        assert_eq!(i.resolve(c), "func");
    }

    #[test]
    fn symbols_are_dense_in_first_seen_order() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern(Cow::Borrowed("a")).index(), 0);
        assert_eq!(i.intern(Cow::Borrowed("b")).index(), 1);
        assert_eq!(i.intern(Cow::Borrowed("a")).index(), 0);
    }
}
