//! The borrowed, span-carrying document model produced by
//! [`parse_document`](crate::parse_document).
//!
//! Every node borrows from the source text where it can: plain scalars and
//! quoted scalars without escapes are [`Cow::Borrowed`] slices of the input
//! buffer (zero copies, zero allocations for the string data); only scalars
//! that required unescaping (`"a\"b"`, `"line\nbreak"`) own their text.
//! Every node also records the [`Span`] it was parsed from, and every
//! mapping key is interned (see [`Interner`]) so duplicate detection and
//! repeated-key accounting are symbol comparisons.
//!
//! [`Node::to_owned_value`] converts into the owned [`Value`] model, which
//! is what the rest of the workspace consumes — the owned API is a thin
//! layer over this one.

use std::borrow::Cow;

use crate::intern::{Interner, Symbol};
use crate::span::Span;
use crate::value::{Map, Value};

/// A parsed value plus the source region it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Node<'a> {
    /// The value itself.
    pub value: ValueRef<'a>,
    /// Where in the source the value starts (first line of the construct).
    pub span: Span,
}

impl<'a> Node<'a> {
    /// Construct a node.
    pub fn new(value: ValueRef<'a>, span: Span) -> Node<'a> {
        Node { value, span }
    }

    /// Convert into the owned [`Value`] model (drops spans).
    pub fn to_owned_value(&self) -> Value {
        match &self.value {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(*b),
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(f) => Value::Float(*f),
            ValueRef::Str(s) => Value::Str(s.clone().into_owned()),
            ValueRef::Seq(items) => Value::Seq(items.iter().map(Node::to_owned_value).collect()),
            ValueRef::Map(map) => {
                // The parser rejected duplicate keys, so the entries can be
                // collected without re-scanning for collisions.
                Value::Map(Map::from_unique_entries(
                    map.iter()
                        .map(|e| (e.key.as_ref().to_owned(), e.node.to_owned_value()))
                        .collect(),
                ))
            }
        }
    }

    /// Borrowed-string view (only for [`ValueRef::Str`]).
    pub fn as_str(&self) -> Option<&str> {
        match &self.value {
            ValueRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Node<'a>]> {
        match &self.value {
            ValueRef::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Option<&MapRef<'a>> {
        match &self.value {
            ValueRef::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Shorthand for map lookup; `None` for non-map nodes.
    pub fn get(&self, key: &str) -> Option<&Node<'a>> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// All spans in the subtree, pre-order (node before children, map keys
    /// before their values).  Used by the span-ordering invariants.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        self.collect_spans(&mut out);
        out
    }

    fn collect_spans(&self, out: &mut Vec<Span>) {
        out.push(self.span);
        match &self.value {
            ValueRef::Seq(items) => {
                for item in items {
                    item.collect_spans(out);
                }
            }
            ValueRef::Map(map) => {
                for entry in map.iter() {
                    out.push(entry.key_span);
                    entry.node.collect_spans(out);
                }
            }
            _ => {}
        }
    }
}

/// A borrowed YAML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueRef<'a> {
    /// `null`, `~` or an empty scalar.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// String scalar; borrowed unless unescaping forced a copy.
    Str(Cow<'a, str>),
    /// Sequence (`- item` or `[a, b]`).
    Seq(Vec<Node<'a>>),
    /// Mapping (`key: value` or `{a: 1}`).
    Map(MapRef<'a>),
}

impl<'a> ValueRef<'a> {
    /// Interpret a plain (unquoted) scalar, resolving null, booleans and
    /// numbers exactly like [`Value::from_plain_scalar`] — but keeping
    /// string payloads borrowed.
    pub fn from_plain(s: &'a str) -> ValueRef<'a> {
        let t = s.trim();
        match t {
            "" | "~" | "null" | "Null" | "NULL" => return ValueRef::Null,
            "true" | "True" | "TRUE" => return ValueRef::Bool(true),
            "false" | "False" | "FALSE" => return ValueRef::Bool(false),
            _ => {}
        }
        // Numbers can only start with a digit, a sign or a dot (floats that
        // pass the numeric-character filter below never start with `e`), so
        // everything else is a string without attempting a numeric parse.
        let first = t.as_bytes()[0];
        if !(first.is_ascii_digit() || matches!(first, b'-' | b'+' | b'.')) {
            return ValueRef::Str(Cow::Borrowed(t));
        }
        if let Ok(i) = t.parse::<i64>() {
            return ValueRef::Int(i);
        }
        // Only treat as float if it looks numeric (avoid "1.0.0" or version
        // strings being mangled).
        if t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        {
            if let Ok(f) = t.parse::<f64>() {
                return ValueRef::Float(f);
            }
        }
        ValueRef::Str(Cow::Borrowed(t))
    }
}

/// One `key: value` entry of a [`MapRef`].
#[derive(Debug, Clone, PartialEq)]
pub struct EntryRef<'a> {
    /// The key text (borrowed unless unescaping forced a copy).
    pub key: Cow<'a, str>,
    /// The key's interned symbol in the document's [`Interner`].
    pub key_sym: Symbol,
    /// Where the key sits in the source.
    pub key_span: Span,
    /// The entry's value.
    pub node: Node<'a>,
}

/// An insertion-ordered borrowed mapping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MapRef<'a> {
    entries: Vec<EntryRef<'a>>,
}

impl<'a> MapRef<'a> {
    /// An empty map.
    pub fn new() -> MapRef<'a> {
        MapRef::default()
    }

    /// An empty map with room for a typical block mapping, so the first few
    /// pushes never reallocate.
    pub(crate) fn with_default_capacity() -> MapRef<'a> {
        MapRef {
            entries: Vec::with_capacity(4),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a key with this interned symbol is already present — the
    /// duplicate check is a `u32` comparison, not a string comparison.
    pub fn contains_symbol(&self, sym: Symbol) -> bool {
        self.entries.iter().any(|e| e.key_sym == sym)
    }

    /// Append an entry.  The parser rejects duplicates before calling this,
    /// so no replace-in-place logic is needed here.
    pub fn push(&mut self, entry: EntryRef<'a>) {
        self.entries.push(entry);
    }

    /// Look up a key by text.
    pub fn get(&self, key: &str) -> Option<&Node<'a>> {
        self.entries.iter().find(|e| e.key == key).map(|e| &e.node)
    }

    /// Iterate over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &EntryRef<'a>> {
        self.entries.iter()
    }
}

/// A whole parsed document: the root node plus the key interner it was
/// parsed with.
#[derive(Debug)]
pub struct Document<'a> {
    root: Node<'a>,
    interner: Interner<'a>,
}

impl<'a> Document<'a> {
    pub(crate) fn new(root: Node<'a>, interner: Interner<'a>) -> Document<'a> {
        Document { root, interner }
    }

    /// The document's root node.
    pub fn root(&self) -> &Node<'a> {
        &self.root
    }

    /// The key interner: one symbol per *distinct* mapping key in the
    /// document, however many times it repeats.
    pub fn interner(&self) -> &Interner<'a> {
        &self.interner
    }

    /// Convert into the owned [`Value`] model.
    pub fn into_owned(self) -> Value {
        self.root.to_owned_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_resolution_matches_owned_model() {
        for raw in ["null", "~", "", "true", "False", "42", "-7", "3.5", "x.h5"] {
            let borrowed = Node::new(ValueRef::from_plain(raw), Span::point(1, 1));
            assert_eq!(
                borrowed.to_owned_value(),
                Value::from_plain_scalar(raw),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn plain_strings_stay_borrowed() {
        let source = String::from("  outfile.h5  ");
        match ValueRef::from_plain(&source) {
            ValueRef::Str(Cow::Borrowed(s)) => assert_eq!(s, "outfile.h5"),
            other => panic!("expected borrowed str, got {other:?}"),
        }
    }

    #[test]
    fn map_lookup_and_duplicate_symbol_check() {
        let mut interner = Interner::new();
        let sym = interner.intern(Cow::Borrowed("a"));
        let mut m = MapRef::new();
        assert!(!m.contains_symbol(sym));
        m.push(EntryRef {
            key: Cow::Borrowed("a"),
            key_sym: sym,
            key_span: Span::point(1, 1),
            node: Node::new(ValueRef::Int(1), Span::point(1, 4)),
        });
        assert!(m.contains_symbol(sym));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a").unwrap().to_owned_value(), Value::Int(1));
        assert!(m.get("b").is_none());
    }

    #[test]
    fn spans_collect_in_document_order() {
        let mut interner = Interner::new();
        let sym = interner.intern(Cow::Borrowed("k"));
        let mut m = MapRef::new();
        m.push(EntryRef {
            key: Cow::Borrowed("k"),
            key_sym: sym,
            key_span: Span::point(1, 1),
            node: Node::new(ValueRef::Int(1), Span::point(1, 4)),
        });
        let root = Node::new(ValueRef::Map(m), Span::point(1, 1));
        let spans = root.spans();
        assert_eq!(spans.len(), 3);
        let positions: Vec<_> = spans.iter().map(Span::position).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted);
    }
}
