//! Source positions: every parsed node and every parse error carries a
//! [`Span`] pinning down exactly where in the input it came from.

use std::fmt;

/// A contiguous region of the source text: the 1-based line and byte column
/// of its first character, plus its byte length on that line.
///
/// Block collections extend over multiple lines; their span covers the
/// construct's *first* line (the `- ` dash or the first `key:`), which is
/// what an error message or editor jump target wants.  Columns are byte
/// offsets into the source line (the supported configuration subset is
/// ASCII-dominated, and byte columns are what editors and `line:col` links
/// consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line number in the source text.
    pub line: usize,
    /// 1-based byte column of the first character.
    pub column: usize,
    /// Byte length of the region on its first line (0 for synthesised
    /// nodes such as the empty-document null).
    pub len: usize,
}

impl Span {
    /// A span covering `len` bytes starting at `line:column`.
    pub fn new(line: usize, column: usize, len: usize) -> Span {
        Span { line, column, len }
    }

    /// A single-character span at `line:column` — the shape parse errors
    /// use to point at the offending character.
    pub fn point(line: usize, column: usize) -> Span {
        Span::new(line, column, 1)
    }

    /// The `(line, column)` pair, for ordering spans in document order.
    pub fn position(&self) -> (usize, usize) {
        (self.line, self.column)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_is_one_character_wide() {
        let s = Span::point(3, 7);
        assert_eq!((s.line, s.column, s.len), (3, 7, 1));
        assert_eq!(s.position(), (3, 7));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", Span::new(2, 5, 4)), "line 2, column 5");
    }

    #[test]
    fn spans_order_by_position() {
        let a = Span::new(1, 9, 2);
        let b = Span::new(2, 1, 2);
        assert!(a.position() < b.position());
    }
}
