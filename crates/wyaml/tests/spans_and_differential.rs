//! Property tests for the zero-copy rewrite:
//!
//! * **Differential refinement** — the zero-copy parser is pinned against
//!   the preserved pre-rewrite parser ([`wfspeak_wyaml::baseline`]): when
//!   the new parser accepts, the baseline accepts with the identical value,
//!   and when the baseline rejects, the new parser rejects too.  The two
//!   intentional fixes (tabs → `TabIndent`, flow duplicate keys rejected)
//!   only ever *add* rejections, so both directions hold.
//! * **Span invariants** — every reported error's `line:column` indexes a
//!   real character of the input, and parsed nodes' spans appear in
//!   document order.
//! * **Tab twins** — no tab-indented input ever parses as a differently
//!   shaped document than its space-indented twin (tabs are rejected
//!   outright, with the tab's exact column).
//! * **Slice identity** — borrowed scalars point into the original buffer.

use std::borrow::Cow;

use proptest::prelude::*;
use wfspeak_wyaml::{baseline, emit, parse, parse_document, ErrorKind, Map, Node, Value, ValueRef};

/// Strategy for scalars with printable ASCII plus tabs and newlines — the
/// payloads the block emitter has to quote and escape.
fn gnarly_string() -> impl Strategy<Value = String> {
    "[ -~\t\n]{0,14}"
}

/// Block-style documents: nested mappings, sequences of mappings, gnarly
/// scalars and keys — the corpus shapes with adversarial content.
fn block_value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(|f| Value::Float((f * 100.0).round() / 100.0)),
        gnarly_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            proptest::collection::vec(("[ -~\t\n]{1,8}", inner), 0..4).prop_map(|entries| {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

/// Count scalar string leaves, splitting them into borrowed-from-`buffer`
/// and owned.
fn count_scalars(node: &Node<'_>, buffer: &str, borrowed: &mut usize, owned: &mut usize) {
    match &node.value {
        ValueRef::Str(Cow::Borrowed(s)) => {
            let b = buffer.as_ptr() as usize;
            let p = s.as_ptr() as usize;
            assert!(
                p >= b && p + s.len() <= b + buffer.len(),
                "borrowed scalar {s:?} does not point into the source buffer"
            );
            *borrowed += 1;
        }
        ValueRef::Str(Cow::Owned(_)) => *owned += 1,
        ValueRef::Seq(items) => {
            for item in items {
                count_scalars(item, buffer, borrowed, owned);
            }
        }
        ValueRef::Map(map) => {
            for entry in map.iter() {
                count_scalars(&entry.node, buffer, borrowed, owned);
            }
        }
        _ => {}
    }
}

/// Replace the leading space run of every line with tabs, producing the
/// "tab twin" of a space-indented document.
fn tab_twin(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    for line in source.split_inclusive('\n') {
        let indent = line.len() - line.trim_start_matches(' ').len();
        for _ in 0..indent {
            out.push('\t');
        }
        out.push_str(&line[indent..]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    // On arbitrary text, the zero-copy parser is a refinement of the
    // baseline: it accepts a subset of what the baseline accepts, and where
    // both accept the values are identical.
    #[test]
    fn zero_copy_refines_baseline_on_arbitrary_text(text in "[ -~\t\n]{0,200}") {
        let new = parse(&text);
        let old = baseline::parse(&text);
        if let Ok(new_value) = &new {
            let old_value = old.as_ref().unwrap_or_else(|e| {
                panic!("zero-copy accepted but baseline rejected:\n{text:?}\nerror: {e}")
            });
            prop_assert_eq!(new_value, old_value, "parsers disagree on:\n{:?}", text);
        }
        // (old Err => new Err is the contrapositive of the check above.)
    }

    // On well-formed emitted documents the two parsers agree exactly.
    #[test]
    fn zero_copy_matches_baseline_on_emitted_documents(value in block_value_strategy()) {
        let text = emit(&value);
        let new = parse(&text).unwrap_or_else(|e| panic!("zero-copy rejected:\n{text:?}\nerror: {e}"));
        let old = baseline::parse(&text).unwrap_or_else(|e| panic!("baseline rejected:\n{text:?}\nerror: {e}"));
        prop_assert_eq!(new, old);
    }

    // Every parse error's line and column index a real character of the
    // input (1-based; the column lands on or inside the offending line).
    #[test]
    fn error_positions_index_a_real_character(text in "[ -~\t\n]{0,200}") {
        if let Err(e) = parse(&text) {
            let lines: Vec<&str> = text.lines().collect();
            prop_assert!(e.line() >= 1 && e.line() <= lines.len(),
                "line {} out of range 1..={} for {text:?} ({e})", e.line(), lines.len());
            let line = lines[e.line() - 1];
            prop_assert!(e.column() >= 1 && e.column() <= line.len(),
                "column {} out of range 1..={} on line {:?} for {text:?} ({e})",
                e.column(), line.len(), line);
        }
    }

    // Emit → parse keeps node spans in document order: a pre-order walk of
    // the tree (keys before values) yields non-decreasing (line, column).
    #[test]
    fn emitted_documents_have_ordered_spans(value in block_value_strategy()) {
        let text = emit(&value);
        let doc = parse_document(&text).unwrap_or_else(|e| panic!("rejected:\n{text:?}\nerror: {e}"));
        let spans = doc.root().spans();
        let positions: Vec<_> = spans.iter().map(|s| s.position()).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        prop_assert_eq!(&positions, &sorted, "spans out of document order for:\n{:?}", text);
        // Spans of non-synthesised nodes index real characters.
        let lines: Vec<&str> = text.lines().collect();
        for span in &spans {
            if span.len == 0 {
                continue;
            }
            prop_assert!(span.line >= 1 && span.line <= lines.len());
            let line = lines[span.line - 1];
            prop_assert!(span.column >= 1 && span.column + span.len - 1 <= line.len(),
                "span {span:?} exceeds line {line:?} in {text:?}");
        }
    }

    // Zero-copy means zero copies: scalars that needed no unescaping borrow
    // from the source buffer.  Only double-quoted scalars containing a
    // backslash may own their text.
    #[test]
    fn unescaped_scalars_borrow_from_the_buffer(value in block_value_strategy()) {
        let text = emit(&value);
        let doc = parse_document(&text).unwrap_or_else(|e| panic!("rejected:\n{text:?}\nerror: {e}"));
        let (mut borrowed, mut owned) = (0usize, 0usize);
        count_scalars(doc.root(), &text, &mut borrowed, &mut owned);
        let escapes = text.lines().filter(|l| l.contains('\\')).count();
        prop_assert!(owned <= escapes,
            "{owned} owned scalars but only {escapes} lines with escapes in:\n{text:?}");
    }

    // No tab-indented input ever parses as a differently-shaped document
    // than its space-indented twin: indentation tabs are rejected outright,
    // and the error column points at a real tab.
    #[test]
    fn tab_twin_never_parses_to_a_different_shape(value in block_value_strategy()) {
        let text = emit(&value);
        let twin = tab_twin(&text);
        if twin == text {
            // No indentation anywhere — nothing to check.
            return Ok(());
        }
        let space_parse = parse(&text);
        match parse(&twin) {
            Ok(twin_value) => {
                // Only acceptable if the space version parses identically
                // (cannot happen today — tabs always error — but this is
                // the shape-equality form of the property).
                prop_assert_eq!(Ok(twin_value), space_parse);
            }
            Err(e) => {
                prop_assert_eq!(e.kind, ErrorKind::TabIndent, "twin:\n{:?}", twin);
                let line = twin.lines().nth(e.line() - 1).unwrap();
                prop_assert_eq!(line.as_bytes()[e.column() - 1], b'\t',
                    "column {} of {:?} is not the tab", e.column(), line);
            }
        }
    }
}
