//! Property-based round-trip tests: any value built from the supported
//! model emits to text that re-parses to an equivalent value.

use proptest::prelude::*;
use wfspeak_wyaml::{emit, emit_value, parse, Map, Value};

/// Strategy for plain-ish scalar strings (identifiers, paths, filenames).
fn scalar_string() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,12}",
        "/[a-z]{1,6}/[a-z]{1,6}",
        "[a-z]{1,8}\\.h5",
        "[a-z ]{1,14}",
        Just(String::new()),
        Just("null".to_string()),
        Just("42".to_string()),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(|f| Value::Float((f * 100.0).round() / 100.0)),
        scalar_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            proptest::collection::vec(("[a-z][a-z0-9_]{0,8}", inner), 0..4).prop_map(|entries| {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

/// Floats can lose the integral/float distinction through emission when they
/// have no fractional part and a scalar re-resolution; compare with that
/// tolerance.
fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x - y).abs() < 1e-9,
        (Value::Float(x), Value::Int(y)) | (Value::Int(y), Value::Float(x)) => {
            (*x - *y as f64).abs() < 1e-9
        }
        (Value::Seq(xs), Value::Seq(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| approx_eq(x, y))
        }
        (Value::Map(xm), Value::Map(ym)) => {
            xm.len() == ym.len()
                && xm
                    .iter()
                    .all(|(k, v)| ym.get(k).map(|w| approx_eq(v, w)).unwrap_or(false))
        }
        _ => a == b,
    }
}

/// Strategy for arbitrary printable-ASCII scalars — includes quotes,
/// backslashes, colons, commas and brackets, exactly the characters that
/// force quoting and escaping in flow style.
fn gnarly_string() -> impl Strategy<Value = String> {
    "[ -~]{0,12}"
}

/// Values emitted in flow style: scalars (with gnarly strings) plus nested
/// flow sequences and mappings.
fn flow_value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(|f| Value::Float((f * 100.0).round() / 100.0)),
        gnarly_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            proptest::collection::vec(("[ -~]{1,8}", inner), 0..4).prop_map(|entries| {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

/// Strategy for scalars emitted in *block* style: printable ASCII plus
/// embedded tabs and newlines — the characters that force the block emitter
/// to quote and escape.
fn block_gnarly_string() -> impl Strategy<Value = String> {
    "[ -~\t\n]{0,14}"
}

/// Block-style documents: gnarly scalars under mapping keys, nested
/// mappings (gnarly keys included), and sequences of mappings — the shapes
/// the corpus configs use, with adversarial content.
fn block_value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(|f| Value::Float((f * 100.0).round() / 100.0)),
        block_gnarly_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Sequences (including sequences of mappings via the map arm).
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            // Mappings with gnarly keys.
            proptest::collection::vec(("[ -~\t\n]{1,8}", inner), 0..4).prop_map(|entries| {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

/// Sequences of mappings specifically (`- key: value` with continuation
/// lines) — the layout every task list in the corpus uses.
fn seq_of_maps_strategy() -> impl Strategy<Value = Value> {
    let scalar = prop_oneof![
        Just(Value::Null),
        (-1000i64..1000).prop_map(Value::Int),
        block_gnarly_string().prop_map(Value::Str),
    ];
    let map = proptest::collection::vec(("[ -~]{1,8}", scalar), 1..4).prop_map(|entries| {
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Value::Map(m)
    });
    proptest::collection::vec(map, 1..4).prop_map(Value::Seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn emit_parse_round_trip(value in value_strategy()) {
        let text = emit(&value);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("failed to reparse:\n{text}\nerror: {e}"));
        prop_assert!(approx_eq(&value, &reparsed), "value {value:?} -> text:\n{text}\nreparsed {reparsed:?}");
    }

    #[test]
    fn emit_is_idempotent(value in value_strategy()) {
        let once = emit(&value);
        let twice = emit(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_text(text in "[ -~\n]{0,200}") {
        let _ = parse(&text);
    }

    // Flow-style emission (quoted/escaped scalars, quoted keys, nested flow
    // collections) re-parses to an equivalent value.  Regression cover for
    // the flow parser's escaped-quote and quoted-key handling.
    #[test]
    fn flow_emit_parse_round_trip(value in flow_value_strategy()) {
        let text = emit_value(&value);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("failed to reparse flow text:\n{text}\nerror: {e}"));
        prop_assert!(approx_eq(&value, &reparsed), "value {value:?} -> text:\n{text}\nreparsed {reparsed:?}");
    }

    // The same flow collections survive when embedded as a block-mapping
    // value (the form the corpus configs actually use, e.g. `dims: [64, 64]`).
    #[test]
    fn flow_collection_under_key_round_trips(value in flow_value_strategy()) {
        let text = format!("root: {}\n", emit_value(&value));
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{text}\nerror: {e}"));
        let root = reparsed.get("root").expect("root key survives");
        prop_assert!(approx_eq(&value, root), "value {value:?} -> text:\n{text}\nreparsed {root:?}");
    }

    // Block-emitted scalars with quotes, backslashes, tabs and newlines
    // re-parse to the identical string.  Regression cover for the emitter's
    // newline/tab escaping and quote-character quoting.
    #[test]
    fn block_scalar_round_trip(s in block_gnarly_string()) {
        let value = Value::Str(s);
        let text = emit(&value);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("failed to reparse scalar doc:\n{text:?}\nerror: {e}"));
        prop_assert!(approx_eq(&value, &reparsed), "value {value:?} -> text {text:?} -> {reparsed:?}");
    }

    // Arbitrary block documents — nested mappings with gnarly keys, gnarly
    // scalars, sequences of mappings — survive emit → parse.  Regression
    // cover for quoted-key unescaping (`"a\"b": 1`) and for plain keys
    // containing quote characters or opening brackets, which used to derail
    // the mapping-colon search.
    #[test]
    fn block_emit_parse_round_trip(value in block_value_strategy()) {
        let text = emit(&value);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{text:?}\nerror: {e}"));
        prop_assert!(approx_eq(&value, &reparsed), "value {value:?} -> text:\n{text}\nreparsed {reparsed:?}");
    }

    // And block emission is idempotent on the same shapes.
    #[test]
    fn block_emit_is_idempotent(value in block_value_strategy()) {
        let once = emit(&value);
        let twice = emit(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    // Sequences of mappings (`- key: value` + continuation lines) round-trip
    // with gnarly scalar payloads.
    #[test]
    fn sequence_of_mappings_round_trip(value in seq_of_maps_strategy()) {
        let text = emit(&value);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{text:?}\nerror: {e}"));
        prop_assert!(approx_eq(&value, &reparsed), "value {value:?} -> text:\n{text}\nreparsed {reparsed:?}");
        // Same layout survives nesting under a key, as in the Wilkins configs.
        let nested = format!("tasks:\n{}", emit(&value).lines().map(|l| format!("  {l}\n")).collect::<String>());
        let reparsed = parse(&nested)
            .unwrap_or_else(|e| panic!("failed to reparse nested:\n{nested:?}\nerror: {e}"));
        let tasks = reparsed.get("tasks").expect("tasks key survives");
        prop_assert!(approx_eq(&value, tasks), "nested {value:?} -> text:\n{nested}\nreparsed {tasks:?}");
    }
}
