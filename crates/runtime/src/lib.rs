//! `wfspeak-runtime` — a small in situ workflow execution engine.
//!
//! The paper evaluates LLMs on *describing* workflows (configuration files,
//! annotated task codes); this crate closes the loop by actually *running*
//! the described workflow.  A validated Wilkins-style configuration (or a
//! neutral [`wfspeak_systems::WorkflowSpec`]) is turned into a task graph
//! whose tasks execute concurrently on thread-backed "process groups" and
//! exchange typed datasets through in-memory channels — the same
//! producer/consumer pattern the benchmark's task codes implement.
//!
//! Uses:
//! * behavioural correctness checks — a generated configuration is "right"
//!   not only when it textually matches the reference but when the workflow
//!   it describes runs to completion and the consumers see the producer's
//!   data;
//! * the runtime-scaling benchmark in `wfspeak-bench`;
//! * the `run_workflow` example.
//!
//! # Quickstart
//!
//! ```
//! use wfspeak_runtime::{Engine, EngineConfig};
//! use wfspeak_systems::WorkflowSpec;
//!
//! let spec = WorkflowSpec::paper_3node();
//! let outcome = Engine::new(EngineConfig::default()).run(&spec).unwrap();
//! assert!(outcome.completed);
//! assert_eq!(outcome.timesteps, 3);
//! ```

pub mod data;
pub mod engine;
pub mod task;
pub mod trace;

pub use data::{DataMessage, Dataset};
pub use engine::{Engine, EngineConfig, EngineError, RunOutcome};
pub use task::{ConsumerBehavior, ProducerBehavior, RelayBehavior, TaskBehavior, TaskContext};
pub use trace::{Event, EventKind, ExecutionTrace, TraceSummary};
