//! Typed datasets exchanged between workflow tasks.

use bytes::Bytes;

/// A named dataset payload produced at one timestep.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (e.g. `grid`, `particles`).
    pub name: String,
    /// HDF5-style group path (e.g. `/group1/grid`).
    pub group_path: String,
    /// Raw little-endian `f32` payload.
    pub payload: Bytes,
    /// Number of `f32` elements in the payload.
    pub len: usize,
}

impl Dataset {
    /// Build a dataset from an `f32` slice.
    pub fn from_f32(name: &str, group_path: &str, values: &[f32]) -> Self {
        let mut buf = Vec::with_capacity(values.len() * 4);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Dataset {
            name: name.to_owned(),
            group_path: group_path.to_owned(),
            payload: Bytes::from(buf),
            len: values.len(),
        }
    }

    /// Decode the payload back into `f32` values.
    pub fn to_f32(&self) -> Vec<f32> {
        self.payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Sum of all elements (the reduction the benchmark's consumers compute).
    pub fn sum(&self) -> f64 {
        self.to_f32().iter().map(|&v| v as f64).sum()
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }
}

/// A message on a producer→consumer link.
#[derive(Debug, Clone, PartialEq)]
pub enum DataMessage {
    /// A dataset for a given timestep.
    Step {
        /// Timestep index (0-based).
        timestep: usize,
        /// The dataset payload.
        dataset: Dataset,
    },
    /// The producer has finished; no more steps will arrive.
    EndOfStream,
}

impl DataMessage {
    /// The timestep carried by a `Step` message.
    pub fn timestep(&self) -> Option<usize> {
        match self {
            DataMessage::Step { timestep, .. } => Some(*timestep),
            DataMessage::EndOfStream => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip() {
        let values = vec![1.0_f32, 2.5, -3.25, 0.0];
        let ds = Dataset::from_f32("grid", "/group1/grid", &values);
        assert_eq!(ds.to_f32(), values);
        assert_eq!(ds.len, 4);
        assert_eq!(ds.size_bytes(), 16);
    }

    #[test]
    fn sum_matches_manual_reduction() {
        let values = vec![0.5_f32; 100];
        let ds = Dataset::from_f32("particles", "/group1/particles", &values);
        assert!((ds.sum() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::from_f32("grid", "/g", &[]);
        assert_eq!(ds.len, 0);
        assert_eq!(ds.sum(), 0.0);
        assert!(ds.to_f32().is_empty());
    }

    #[test]
    fn message_timestep_accessor() {
        let ds = Dataset::from_f32("grid", "/g", &[1.0]);
        assert_eq!(
            DataMessage::Step {
                timestep: 2,
                dataset: ds
            }
            .timestep(),
            Some(2)
        );
        assert_eq!(DataMessage::EndOfStream.timestep(), None);
    }
}
