//! The workflow engine: builds the task graph from a specification, runs
//! each task's process group on threads and collects the outcome.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::bounded;
use parking_lot::Mutex;

use wfspeak_systems::spec::DataRole;
use wfspeak_systems::wilkins::WilkinsConfig;
use wfspeak_systems::WorkflowSpec;

use crate::data::DataMessage;
use crate::task::{
    rank_rng, ConsumerBehavior, ProducerBehavior, ReduceGroup, RelayBehavior, TaskBehavior,
    TaskContext,
};
use crate::trace::{EventKind, ExecutionTrace};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of timesteps the producer runs for (the benchmark default is 3).
    pub timesteps: usize,
    /// Elements per rank in generated arrays (benchmark default 50).
    pub elements: usize,
    /// Bounded channel capacity per link.
    pub channel_capacity: usize,
    /// Send/receive timeout per operation, in milliseconds.
    pub timeout_ms: u64,
    /// RNG seed for data generation.
    pub seed: u64,
    /// Inject a failure into this task at timestep 1 (failure-handling tests).
    pub fail_task: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            timesteps: 3,
            elements: 50,
            channel_capacity: 8,
            timeout_ms: 2_000,
            seed: 42,
            fail_task: None,
        }
    }
}

/// Why a run could not even start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The workflow specification failed structural validation.
    InvalidSpec(String),
    /// A Wilkins configuration could not be parsed.
    InvalidConfig(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidSpec(msg) => write!(f, "invalid workflow spec: {msg}"),
            EngineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of running a workflow.
#[derive(Debug)]
pub struct RunOutcome {
    /// True when every task finished without error and every consumer saw
    /// every timestep of every dataset it subscribes to.
    pub completed: bool,
    /// Timesteps executed.
    pub timesteps: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Per-consumer sums of the datasets received (task → sums in arrival
    /// order).
    pub consumer_sums: HashMap<String, Vec<f64>>,
    /// Names of tasks that failed.
    pub failed_tasks: Vec<String>,
    /// The full event trace.
    pub trace: ExecutionTrace,
}

impl RunOutcome {
    /// Total number of dataset messages received across all consumers.
    pub fn total_received(&self) -> usize {
        self.consumer_sums.values().map(Vec::len).sum()
    }

    /// Deterministic condensation of the run's trace (counts only), the
    /// form compared against a reference run in execution scoring.
    pub fn summary(&self) -> crate::trace::TraceSummary {
        self.trace.summary()
    }
}

/// The workflow engine.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// Run a neutral workflow specification.
    pub fn run(&self, spec: &WorkflowSpec) -> Result<RunOutcome, EngineError> {
        if let Some(diagnostic) = spec.validate().iter().find(|d| d.is_error()) {
            return Err(EngineError::InvalidSpec(diagnostic.to_string()));
        }
        let start = Instant::now();
        let trace = ExecutionTrace::new();

        // Build one bounded channel per (producer, consumer, dataset) edge.
        let mut senders: HashMap<(String, String), Vec<crossbeam_channel::Sender<DataMessage>>> =
            HashMap::new();
        let mut receivers: HashMap<(String, String), crossbeam_channel::Receiver<DataMessage>> =
            HashMap::new();
        for (producer, consumer, dataset) in spec.edges() {
            let (tx, rx) = bounded(self.config.channel_capacity);
            senders
                .entry((producer.clone(), dataset.clone()))
                .or_default()
                .push(tx);
            receivers.insert((consumer, dataset), rx);
        }

        let results: Arc<Mutex<HashMap<String, Vec<f64>>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut handles = Vec::new();

        for task in &spec.tasks {
            let produces = task.data.iter().any(|d| d.role == DataRole::Produces);
            let consumes = task.data.iter().any(|d| d.role == DataRole::Consumes);
            let behavior: Arc<dyn TaskBehavior> = match (produces, consumes) {
                // Interior stage: drain inputs and republish downstream.
                (true, true) => Arc::new(RelayBehavior),
                (true, false) => Arc::new(ProducerBehavior),
                _ => Arc::new(ConsumerBehavior),
            };
            let reduce = Arc::new(ReduceGroup::new(task.nprocs));
            trace.record(&task.name, 0, EventKind::TaskStarted);

            for rank in 0..task.nprocs {
                let mut outputs: HashMap<String, Vec<crossbeam_channel::Sender<DataMessage>>> =
                    HashMap::new();
                let mut inputs: HashMap<String, crossbeam_channel::Receiver<DataMessage>> =
                    HashMap::new();
                let mut group_paths = HashMap::new();
                if rank == 0 {
                    for req in &task.data {
                        group_paths.insert(req.dataset.clone(), req.group_path.clone());
                        match req.role {
                            DataRole::Produces => {
                                if let Some(txs) =
                                    senders.get(&(task.name.clone(), req.dataset.clone()))
                                {
                                    outputs.insert(req.dataset.clone(), txs.clone());
                                } else {
                                    // Dataset produced but never consumed: no links.
                                    outputs.insert(req.dataset.clone(), Vec::new());
                                }
                            }
                            DataRole::Consumes => {
                                if let Some(rx) =
                                    receivers.remove(&(task.name.clone(), req.dataset.clone()))
                                {
                                    inputs.insert(req.dataset.clone(), rx);
                                }
                            }
                        }
                    }
                }
                let fail_at_step = match &self.config.fail_task {
                    Some(name) if name == &task.name && rank == 0 => Some(1),
                    _ => None,
                };
                let mut ctx = TaskContext {
                    task: task.name.clone(),
                    rank,
                    nprocs: task.nprocs,
                    timesteps: self.config.timesteps,
                    elements: self.config.elements,
                    outputs,
                    inputs,
                    group_paths,
                    reduce: reduce.clone(),
                    trace: trace.clone(),
                    rng: rank_rng(self.config.seed, &task.name, rank),
                    timeout_ms: self.config.timeout_ms,
                    received_sums: Vec::new(),
                    fail_at_step,
                };
                let behavior = behavior.clone();
                let results = results.clone();
                let trace = trace.clone();
                let task_name = task.name.clone();
                handles.push(std::thread::spawn(move || match behavior.run(&mut ctx) {
                    Ok(()) => {
                        if rank == 0 {
                            trace.record(&task_name, rank, EventKind::TaskFinished);
                        }
                        if !ctx.received_sums.is_empty() {
                            results
                                .lock()
                                .entry(task_name.clone())
                                .or_default()
                                .extend(ctx.received_sums);
                        }
                        true
                    }
                    Err(reason) => {
                        trace.record(&task_name, rank, EventKind::TaskFailed { reason });
                        false
                    }
                }));
            }
        }

        let mut all_ok = true;
        for handle in handles {
            match handle.join() {
                Ok(ok) => all_ok &= ok,
                Err(_) => all_ok = false,
            }
        }

        let consumer_sums = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        let failed_tasks = trace.failed_tasks();

        // Completion additionally requires every consumer to have seen every
        // timestep of every dataset it subscribes to.
        let mut delivery_ok = true;
        for task in &spec.tasks {
            let expected: usize = task
                .data
                .iter()
                .filter(|d| d.role == DataRole::Consumes)
                .count()
                * self.config.timesteps;
            if expected > 0 {
                let got = consumer_sums.get(&task.name).map(Vec::len).unwrap_or(0);
                if got != expected {
                    delivery_ok = false;
                }
            }
        }

        Ok(RunOutcome {
            completed: all_ok && failed_tasks.is_empty() && delivery_ok,
            timesteps: self.config.timesteps,
            duration: start.elapsed(),
            consumer_sums,
            failed_tasks,
            trace,
        })
    }

    /// Parse a Wilkins configuration and run the workflow it describes.
    pub fn run_wilkins_config(&self, config_text: &str) -> Result<RunOutcome, EngineError> {
        let (config, report) = WilkinsConfig::parse(config_text);
        match config {
            Some(config) if report.is_valid() => self.run(&config.to_spec("wilkins-workflow")),
            _ => Err(EngineError::InvalidConfig(report.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfspeak_corpus::references::configs::WILKINS_3NODE;
    use wfspeak_systems::spec::TaskSpec;

    #[test]
    fn paper_3node_workflow_runs_to_completion() {
        let outcome = Engine::new(EngineConfig::default())
            .run(&WorkflowSpec::paper_3node())
            .unwrap();
        assert!(outcome.completed, "trace:\n{}", outcome.trace.render());
        assert_eq!(outcome.timesteps, 3);
        // consumer1 and consumer2 each received 3 steps of their dataset.
        assert_eq!(outcome.consumer_sums["consumer1"].len(), 3);
        assert_eq!(outcome.consumer_sums["consumer2"].len(), 3);
        assert!(outcome.failed_tasks.is_empty());
        assert_eq!(outcome.trace.published_count("grid"), 3);
        assert_eq!(outcome.trace.received_count("grid"), 3);
    }

    #[test]
    fn consumer_sums_are_plausible() {
        let config = EngineConfig {
            elements: 100,
            ..EngineConfig::default()
        };
        let outcome = Engine::new(config)
            .run(&WorkflowSpec::paper_3node())
            .unwrap();
        // Uniform [0,1) values: the sum of 100 elements is around 50.
        for sums in outcome.consumer_sums.values() {
            for s in sums {
                assert!(*s > 20.0 && *s < 80.0, "implausible sum {s}");
            }
        }
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = |seed| {
            let config = EngineConfig {
                seed,
                ..EngineConfig::default()
            };
            let outcome = Engine::new(config)
                .run(&WorkflowSpec::fewshot_2node())
                .unwrap();
            outcome.consumer_sums["consumer"].clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn benchmark_spec_traces_are_deterministic_across_runs_and_capacities() {
        // Execution scoring depends on this: repeated runs of the benchmark
        // spec under one seed must summarise identically, and the channel
        // capacity (a scheduling knob, not a semantic one) must not change
        // what was published, received or summed.
        let run = |channel_capacity: usize| {
            let config = EngineConfig {
                channel_capacity,
                ..EngineConfig::default()
            };
            let outcome = Engine::new(config)
                .run(&WorkflowSpec::paper_3node())
                .unwrap();
            assert!(outcome.completed, "trace:\n{}", outcome.trace.render());
            let summary = outcome.summary();
            let mut sums: Vec<(String, Vec<f64>)> = outcome.consumer_sums.into_iter().collect();
            sums.sort_by(|a, b| a.0.cmp(&b.0));
            (summary, sums)
        };
        let (baseline_summary, baseline_sums) = run(8);
        for _ in 0..3 {
            let (summary, sums) = run(8);
            assert_eq!(summary, baseline_summary, "repeat run diverged");
            assert_eq!(sums, baseline_sums, "repeat run changed consumer sums");
        }
        for capacity in [1, 2, 4, 32] {
            let (summary, sums) = run(capacity);
            assert_eq!(summary, baseline_summary, "capacity {capacity} diverged");
            assert_eq!(
                sums, baseline_sums,
                "capacity {capacity} changed consumer sums"
            );
        }
    }

    #[test]
    fn relay_tasks_drain_inputs_and_republish() {
        // producer -> relay -> sink: the interior task must consume every
        // upstream timestep AND deliver every timestep downstream.
        let spec = WorkflowSpec::new("chain3")
            .with_task(TaskSpec::new("producer", 1).produces("raw"))
            .with_task(TaskSpec::new("relay", 1).consumes("raw").produces("cooked"))
            .with_task(TaskSpec::new("sink", 1).consumes("cooked"));
        let outcome = Engine::new(EngineConfig::default()).run(&spec).unwrap();
        assert!(outcome.completed, "trace:\n{}", outcome.trace.render());
        assert_eq!(outcome.consumer_sums["relay"].len(), 3);
        assert_eq!(outcome.consumer_sums["sink"].len(), 3);
        assert_eq!(outcome.trace.published_count("cooked"), 3);
        assert_eq!(outcome.trace.received_count("cooked"), 3);
    }

    #[test]
    fn thousand_task_topologies_are_deterministic_across_capacities() {
        // The scaling benchmark's determinism checksums rest on this: a
        // seeded 1000-task graph must summarise identically run to run and
        // across channel capacities, which only reorder scheduling.
        use wfspeak_systems::topo::{TopoShape, TopoSpec};
        for shape in [TopoShape::Diamond, TopoShape::FanOut] {
            let spec = TopoSpec::new(shape, 1000, 42).generate();
            let run = |channel_capacity: usize| {
                let config = EngineConfig {
                    channel_capacity,
                    timeout_ms: 60_000,
                    ..EngineConfig::default()
                };
                let outcome = Engine::new(config).run(&spec).unwrap();
                assert!(outcome.completed, "{shape} did not complete");
                let summary = outcome.summary();
                let mut sums: Vec<(String, Vec<f64>)> = outcome.consumer_sums.into_iter().collect();
                sums.sort_by(|a, b| a.0.cmp(&b.0));
                (summary, sums)
            };
            let baseline = run(8);
            for capacity in [1, 32] {
                assert_eq!(run(capacity), baseline, "{shape} capacity {capacity}");
            }
        }
    }

    #[test]
    fn invalid_spec_rejected() {
        let spec = WorkflowSpec::new("bad").with_task(TaskSpec::new("c", 1).consumes("ghost"));
        let err = Engine::new(EngineConfig::default()).run(&spec).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSpec(_)));
    }

    #[test]
    fn reference_wilkins_config_executes() {
        let outcome = Engine::new(EngineConfig::default())
            .run_wilkins_config(WILKINS_3NODE)
            .unwrap();
        assert!(outcome.completed, "trace:\n{}", outcome.trace.render());
        assert_eq!(outcome.total_received(), 6);
    }

    #[test]
    fn hallucinated_wilkins_config_refuses_to_run() {
        let bad = "workflow:\n  tasks:\n    - func: producer\n      command: ./p\n";
        let err = Engine::new(EngineConfig::default())
            .run_wilkins_config(bad)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)));
    }

    #[test]
    fn injected_producer_failure_propagates() {
        let config = EngineConfig {
            fail_task: Some("producer".into()),
            timeout_ms: 300,
            ..EngineConfig::default()
        };
        let outcome = Engine::new(config)
            .run(&WorkflowSpec::fewshot_2node())
            .unwrap();
        assert!(!outcome.completed);
        assert!(outcome.failed_tasks.contains(&"producer".to_string()));
    }

    #[test]
    fn injected_consumer_failure_marks_run_incomplete() {
        let config = EngineConfig {
            fail_task: Some("consumer".into()),
            timeout_ms: 300,
            ..EngineConfig::default()
        };
        let outcome = Engine::new(config)
            .run(&WorkflowSpec::fewshot_2node())
            .unwrap();
        assert!(!outcome.completed);
    }

    #[test]
    fn single_task_workflow_with_unconsumed_output_completes() {
        let spec =
            WorkflowSpec::new("solo").with_task(TaskSpec::new("producer", 2).produces("grid"));
        let outcome = Engine::new(EngineConfig::default()).run(&spec).unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.total_received(), 0);
    }

    #[test]
    fn larger_process_counts_still_complete() {
        let spec = WorkflowSpec::new("wide")
            .with_task(TaskSpec::new("producer", 8).produces("grid"))
            .with_task(TaskSpec::new("consumer1", 4).consumes("grid"));
        let config = EngineConfig {
            timesteps: 5,
            elements: 10,
            ..EngineConfig::default()
        };
        let outcome = Engine::new(config).run(&spec).unwrap();
        assert!(outcome.completed, "trace:\n{}", outcome.trace.render());
        assert_eq!(outcome.consumer_sums["consumer1"].len(), 5);
    }
}
