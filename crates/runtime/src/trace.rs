//! Execution tracing: a thread-safe event log recorded while a workflow
//! runs, used by tests, examples and the behavioural-correctness checks.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A task (all its ranks) started.
    TaskStarted,
    /// A task published a dataset for a timestep.
    DataPublished {
        /// Dataset name.
        dataset: String,
        /// Timestep index.
        timestep: usize,
    },
    /// A task received a dataset for a timestep.
    DataReceived {
        /// Dataset name.
        dataset: String,
        /// Timestep index.
        timestep: usize,
    },
    /// A task finished cleanly.
    TaskFinished,
    /// A task failed.
    TaskFailed {
        /// Error description.
        reason: String,
    },
}

/// One trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Task that emitted the event.
    pub task: String,
    /// Rank within the task's process group.
    pub rank: usize,
    /// Microseconds since the engine started.
    pub elapsed_us: u128,
    /// Event payload.
    pub kind: EventKind,
}

/// A shared, append-only event log.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    start: Instant,
    events: Arc<Mutex<Vec<Event>>>,
}

impl Default for ExecutionTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionTrace {
    /// Create an empty trace starting now.
    pub fn new() -> Self {
        ExecutionTrace {
            start: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Record an event.
    pub fn record(&self, task: &str, rank: usize, kind: EventKind) {
        let event = Event {
            task: task.to_owned(),
            rank,
            elapsed_us: self.start.elapsed().as_micros(),
            kind,
        };
        self.events.lock().push(event);
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count events matching a predicate.
    pub fn count_where(&self, predicate: impl Fn(&Event) -> bool) -> usize {
        self.events.lock().iter().filter(|e| predicate(e)).count()
    }

    /// Number of `DataPublished` events for a dataset.
    pub fn published_count(&self, dataset: &str) -> usize {
        self.count_where(
            |e| matches!(&e.kind, EventKind::DataPublished { dataset: d, .. } if d == dataset),
        )
    }

    /// Number of `DataReceived` events for a dataset.
    pub fn received_count(&self, dataset: &str) -> usize {
        self.count_where(
            |e| matches!(&e.kind, EventKind::DataReceived { dataset: d, .. } if d == dataset),
        )
    }

    /// Names of tasks that failed.
    pub fn failed_tasks(&self) -> Vec<String> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::TaskFailed { .. } => Some(e.task.clone()),
                _ => None,
            })
            .collect()
    }

    /// Render a compact human-readable log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().iter() {
            let desc = match &e.kind {
                EventKind::TaskStarted => "started".to_owned(),
                EventKind::TaskFinished => "finished".to_owned(),
                EventKind::TaskFailed { reason } => format!("FAILED: {reason}"),
                EventKind::DataPublished { dataset, timestep } => {
                    format!("published {dataset} [t={timestep}]")
                }
                EventKind::DataReceived { dataset, timestep } => {
                    format!("received {dataset} [t={timestep}]")
                }
            };
            out.push_str(&format!(
                "[{:>8} us] {}[{}]: {}\n",
                e.elapsed_us, e.task, e.rank, desc
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let trace = ExecutionTrace::new();
        assert!(trace.is_empty());
        trace.record("producer", 0, EventKind::TaskStarted);
        trace.record(
            "producer",
            0,
            EventKind::DataPublished {
                dataset: "grid".into(),
                timestep: 0,
            },
        );
        trace.record(
            "consumer1",
            0,
            EventKind::DataReceived {
                dataset: "grid".into(),
                timestep: 0,
            },
        );
        trace.record("producer", 0, EventKind::TaskFinished);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.published_count("grid"), 1);
        assert_eq!(trace.received_count("grid"), 1);
        assert_eq!(trace.published_count("particles"), 0);
        assert!(trace.failed_tasks().is_empty());
    }

    #[test]
    fn failed_tasks_reported() {
        let trace = ExecutionTrace::new();
        trace.record(
            "consumer2",
            0,
            EventKind::TaskFailed {
                reason: "missing dataset".into(),
            },
        );
        assert_eq!(trace.failed_tasks(), vec!["consumer2"]);
    }

    #[test]
    fn render_contains_tasks_and_events() {
        let trace = ExecutionTrace::new();
        trace.record("producer", 1, EventKind::TaskStarted);
        trace.record(
            "producer",
            1,
            EventKind::DataPublished {
                dataset: "grid".into(),
                timestep: 2,
            },
        );
        let text = trace.render();
        assert!(text.contains("producer[1]"));
        assert!(text.contains("published grid [t=2]"));
    }

    #[test]
    fn clone_shares_the_same_log() {
        let trace = ExecutionTrace::new();
        let cloned = trace.clone();
        cloned.record("x", 0, EventKind::TaskStarted);
        assert_eq!(trace.len(), 1);
    }
}
