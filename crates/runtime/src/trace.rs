//! Execution tracing: a thread-safe event log recorded while a workflow
//! runs, used by tests, examples and the behavioural-correctness checks.
//!
//! Beyond the raw log, [`TraceSummary`] condenses a trace into deterministic
//! counts (per-dataset message totals, an event-kind histogram, per-task
//! lifecycle tallies) that are identical across repeated runs of the same
//! seed regardless of thread scheduling — the form the execution-validated
//! evaluation compares against a reference run via
//! [`TraceSummary::fidelity`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A task (all its ranks) started.
    TaskStarted,
    /// A task published a dataset for a timestep.
    DataPublished {
        /// Dataset name.
        dataset: String,
        /// Timestep index.
        timestep: usize,
    },
    /// A task received a dataset for a timestep.
    DataReceived {
        /// Dataset name.
        dataset: String,
        /// Timestep index.
        timestep: usize,
    },
    /// A task finished cleanly.
    TaskFinished,
    /// A task failed.
    TaskFailed {
        /// Error description.
        reason: String,
    },
}

impl EventKind {
    /// Stable label used in histograms and rendered summaries.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TaskStarted => "task-started",
            EventKind::DataPublished { .. } => "data-published",
            EventKind::DataReceived { .. } => "data-received",
            EventKind::TaskFinished => "task-finished",
            EventKind::TaskFailed { .. } => "task-failed",
        }
    }
}

/// One trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Task that emitted the event.
    pub task: String,
    /// Rank within the task's process group.
    pub rank: usize,
    /// Microseconds since the engine started.
    pub elapsed_us: u128,
    /// Event payload.
    pub kind: EventKind,
}

/// A shared, append-only event log.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    start: Instant,
    events: Arc<Mutex<Vec<Event>>>,
}

impl Default for ExecutionTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionTrace {
    /// Create an empty trace starting now.
    pub fn new() -> Self {
        ExecutionTrace {
            start: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Record an event.
    pub fn record(&self, task: &str, rank: usize, kind: EventKind) {
        let event = Event {
            task: task.to_owned(),
            rank,
            elapsed_us: self.start.elapsed().as_micros(),
            kind,
        };
        self.events.lock().push(event);
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count events matching a predicate.
    pub fn count_where(&self, predicate: impl Fn(&Event) -> bool) -> usize {
        self.events.lock().iter().filter(|e| predicate(e)).count()
    }

    /// Number of `DataPublished` events for a dataset.
    pub fn published_count(&self, dataset: &str) -> usize {
        self.count_where(
            |e| matches!(&e.kind, EventKind::DataPublished { dataset: d, .. } if d == dataset),
        )
    }

    /// Number of `DataReceived` events for a dataset.
    pub fn received_count(&self, dataset: &str) -> usize {
        self.count_where(
            |e| matches!(&e.kind, EventKind::DataReceived { dataset: d, .. } if d == dataset),
        )
    }

    /// Names of tasks that failed.
    pub fn failed_tasks(&self) -> Vec<String> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::TaskFailed { .. } => Some(e.task.clone()),
                _ => None,
            })
            .collect()
    }

    /// Condense the trace into its deterministic [`TraceSummary`].
    pub fn summary(&self) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for e in self.events.lock().iter() {
            *summary.events.entry(e.kind.label()).or_insert(0) += 1;
            match &e.kind {
                EventKind::TaskStarted => {
                    *summary.tasks_started.entry(e.task.clone()).or_insert(0) += 1;
                }
                EventKind::TaskFinished => {
                    *summary.tasks_finished.entry(e.task.clone()).or_insert(0) += 1;
                }
                EventKind::TaskFailed { .. } => {
                    *summary.tasks_failed.entry(e.task.clone()).or_insert(0) += 1;
                }
                EventKind::DataPublished { dataset, .. } => {
                    *summary.published.entry(dataset.clone()).or_insert(0) += 1;
                }
                EventKind::DataReceived { dataset, .. } => {
                    *summary.received.entry(dataset.clone()).or_insert(0) += 1;
                }
            }
        }
        summary
    }

    /// Render a compact human-readable log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().iter() {
            let desc = match &e.kind {
                EventKind::TaskStarted => "started".to_owned(),
                EventKind::TaskFinished => "finished".to_owned(),
                EventKind::TaskFailed { reason } => format!("FAILED: {reason}"),
                EventKind::DataPublished { dataset, timestep } => {
                    format!("published {dataset} [t={timestep}]")
                }
                EventKind::DataReceived { dataset, timestep } => {
                    format!("received {dataset} [t={timestep}]")
                }
            };
            out.push_str(&format!(
                "[{:>8} us] {}[{}]: {}\n",
                e.elapsed_us, e.task, e.rank, desc
            ));
        }
        out
    }
}

/// Deterministic condensation of an [`ExecutionTrace`]: counts only, keyed
/// by ordered maps, so two runs of the same workflow under the same seed
/// produce *equal* summaries no matter how their threads interleaved.
///
/// This is the unit of comparison for execution-validated evaluation: a
/// generated artifact's run is scored by how closely its summary matches the
/// reference specification's summary ([`TraceSummary::fidelity`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Event-kind histogram ([`EventKind::label`] → count).
    pub events: BTreeMap<&'static str, usize>,
    /// `DataPublished` count per dataset.
    pub published: BTreeMap<String, usize>,
    /// `DataReceived` count per dataset.
    pub received: BTreeMap<String, usize>,
    /// `TaskStarted` count per task.
    pub tasks_started: BTreeMap<String, usize>,
    /// `TaskFinished` count per task.
    pub tasks_finished: BTreeMap<String, usize>,
    /// `TaskFailed` count per task.
    pub tasks_failed: BTreeMap<String, usize>,
}

/// Overlap similarity of two count multisets: `Σ min / max(Σa, Σb)`, which
/// is 1.0 for identical histograms, 0.0 for disjoint ones, and degrades
/// smoothly for partial matches. Two empty histograms count as identical.
fn histogram_overlap<K: Ord>(a: &BTreeMap<K, usize>, b: &BTreeMap<K, usize>) -> f64 {
    let total_a: usize = a.values().sum();
    let total_b: usize = b.values().sum();
    if total_a == 0 && total_b == 0 {
        return 1.0;
    }
    let shared: usize = a
        .iter()
        .map(|(k, &count)| count.min(b.get(k).copied().unwrap_or(0)))
        .sum();
    shared as f64 / total_a.max(total_b) as f64
}

impl TraceSummary {
    /// Total dataset messages published.
    pub fn total_published(&self) -> usize {
        self.published.values().sum()
    }

    /// Total dataset messages received.
    pub fn total_received(&self) -> usize {
        self.received.values().sum()
    }

    /// Total failed-task events.
    pub fn total_failed(&self) -> usize {
        self.tasks_failed.values().sum()
    }

    /// Similarity of this run's trace to a reference run's trace, in
    /// `0.0..=1.0`.
    ///
    /// The score averages four overlap components, each `Σ min / Σ max`
    /// over a count histogram:
    ///
    /// 1. per-dataset published counts,
    /// 2. per-dataset received counts,
    /// 3. the event-kind histogram,
    /// 4. per-task *finish* counts, minus a penalty of one per failed task
    ///    (scaled by the larger run's task count, floored at zero).
    ///
    /// 1.0 means the run is indistinguishable from the reference at trace
    /// granularity; 0.0 means no overlap at all.
    pub fn fidelity(&self, reference: &TraceSummary) -> f64 {
        let published = histogram_overlap(&self.published, &reference.published);
        let received = histogram_overlap(&self.received, &reference.received);
        let events = histogram_overlap(&self.events, &reference.events);
        let lifecycle = {
            let finished = histogram_overlap(&self.tasks_finished, &reference.tasks_finished);
            // Failures are absent from any clean reference; each failed task
            // caps the lifecycle component below 1.
            let total_tasks = self.tasks_started.len().max(reference.tasks_started.len());
            let penalty = if total_tasks == 0 {
                0.0
            } else {
                self.tasks_failed.len() as f64 / total_tasks as f64
            };
            (finished - penalty).max(0.0)
        };
        (published + received + events + lifecycle) / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let trace = ExecutionTrace::new();
        assert!(trace.is_empty());
        trace.record("producer", 0, EventKind::TaskStarted);
        trace.record(
            "producer",
            0,
            EventKind::DataPublished {
                dataset: "grid".into(),
                timestep: 0,
            },
        );
        trace.record(
            "consumer1",
            0,
            EventKind::DataReceived {
                dataset: "grid".into(),
                timestep: 0,
            },
        );
        trace.record("producer", 0, EventKind::TaskFinished);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.published_count("grid"), 1);
        assert_eq!(trace.received_count("grid"), 1);
        assert_eq!(trace.published_count("particles"), 0);
        assert!(trace.failed_tasks().is_empty());
    }

    #[test]
    fn failed_tasks_reported() {
        let trace = ExecutionTrace::new();
        trace.record(
            "consumer2",
            0,
            EventKind::TaskFailed {
                reason: "missing dataset".into(),
            },
        );
        assert_eq!(trace.failed_tasks(), vec!["consumer2"]);
    }

    #[test]
    fn render_contains_tasks_and_events() {
        let trace = ExecutionTrace::new();
        trace.record("producer", 1, EventKind::TaskStarted);
        trace.record(
            "producer",
            1,
            EventKind::DataPublished {
                dataset: "grid".into(),
                timestep: 2,
            },
        );
        let text = trace.render();
        assert!(text.contains("producer[1]"));
        assert!(text.contains("published grid [t=2]"));
    }

    #[test]
    fn clone_shares_the_same_log() {
        let trace = ExecutionTrace::new();
        let cloned = trace.clone();
        cloned.record("x", 0, EventKind::TaskStarted);
        assert_eq!(trace.len(), 1);
    }

    fn sample_trace() -> ExecutionTrace {
        let trace = ExecutionTrace::new();
        trace.record("producer", 0, EventKind::TaskStarted);
        trace.record("consumer1", 0, EventKind::TaskStarted);
        for t in 0..3 {
            trace.record(
                "producer",
                0,
                EventKind::DataPublished {
                    dataset: "grid".into(),
                    timestep: t,
                },
            );
            trace.record(
                "consumer1",
                0,
                EventKind::DataReceived {
                    dataset: "grid".into(),
                    timestep: t,
                },
            );
        }
        trace.record("producer", 0, EventKind::TaskFinished);
        trace.record("consumer1", 0, EventKind::TaskFinished);
        trace
    }

    #[test]
    fn summary_counts_events_by_kind_dataset_and_task() {
        let summary = sample_trace().summary();
        assert_eq!(summary.events["task-started"], 2);
        assert_eq!(summary.events["data-published"], 3);
        assert_eq!(summary.events["data-received"], 3);
        assert_eq!(summary.events["task-finished"], 2);
        assert_eq!(summary.published["grid"], 3);
        assert_eq!(summary.received["grid"], 3);
        assert_eq!(summary.total_published(), 3);
        assert_eq!(summary.total_received(), 3);
        assert_eq!(summary.total_failed(), 0);
        assert_eq!(summary.tasks_finished.len(), 2);
    }

    #[test]
    fn summary_is_order_independent() {
        // The same events recorded in a different interleaving summarise
        // identically — the property the determinism guarantees rest on.
        let reordered = ExecutionTrace::new();
        reordered.record("consumer1", 0, EventKind::TaskStarted);
        reordered.record("producer", 0, EventKind::TaskStarted);
        for t in [2usize, 0, 1] {
            reordered.record(
                "consumer1",
                0,
                EventKind::DataReceived {
                    dataset: "grid".into(),
                    timestep: t,
                },
            );
            reordered.record(
                "producer",
                0,
                EventKind::DataPublished {
                    dataset: "grid".into(),
                    timestep: t,
                },
            );
        }
        reordered.record("consumer1", 0, EventKind::TaskFinished);
        reordered.record("producer", 0, EventKind::TaskFinished);
        assert_eq!(sample_trace().summary(), reordered.summary());
    }

    #[test]
    fn fidelity_is_one_for_identical_summaries_and_zero_for_disjoint() {
        let summary = sample_trace().summary();
        assert!((summary.fidelity(&summary) - 1.0).abs() < 1e-12);

        let empty = TraceSummary::default();
        // An empty run shares nothing with the reference: every overlap
        // component is zero, so the score is exactly zero.
        assert_eq!(summary.fidelity(&empty), 0.0);
        assert!((empty.fidelity(&empty) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_degrades_with_missing_messages_and_failures() {
        let reference = sample_trace().summary();

        let partial = ExecutionTrace::new();
        partial.record("producer", 0, EventKind::TaskStarted);
        partial.record(
            "producer",
            0,
            EventKind::DataPublished {
                dataset: "grid".into(),
                timestep: 0,
            },
        );
        partial.record("producer", 0, EventKind::TaskFinished);
        let partial_score = partial.summary().fidelity(&reference);
        assert!(partial_score > 0.0 && partial_score < 1.0);

        let failed = ExecutionTrace::new();
        failed.record("producer", 0, EventKind::TaskStarted);
        failed.record(
            "producer",
            0,
            EventKind::TaskFailed {
                reason: "boom".into(),
            },
        );
        let failed_score = failed.summary().fidelity(&reference);
        assert!(failed_score < partial_score);
    }

    #[test]
    fn event_kind_labels_are_distinct() {
        let labels = [
            EventKind::TaskStarted.label(),
            EventKind::TaskFinished.label(),
            EventKind::TaskFailed { reason: "".into() }.label(),
            EventKind::DataPublished {
                dataset: "d".into(),
                timestep: 0,
            }
            .label(),
            EventKind::DataReceived {
                dataset: "d".into(),
                timestep: 0,
            }
            .label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
