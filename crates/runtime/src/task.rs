//! Task behaviours and the per-rank execution context.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{DataMessage, Dataset};
use crate::trace::{EventKind, ExecutionTrace};

/// Shared per-task state used to emulate an MPI reduction across the task's
/// ranks.
#[derive(Debug)]
pub struct ReduceGroup {
    barrier: std::sync::Barrier,
    partials: Mutex<Vec<f64>>,
}

impl ReduceGroup {
    /// Create a reduce group for `nprocs` ranks.
    pub fn new(nprocs: usize) -> Self {
        ReduceGroup {
            barrier: std::sync::Barrier::new(nprocs),
            partials: Mutex::new(Vec::new()),
        }
    }
}

/// Everything one rank of one task needs while running.
pub struct TaskContext {
    /// Task name (e.g. `producer`).
    pub task: String,
    /// This rank's index within the task's process group.
    pub rank: usize,
    /// Number of ranks in the task's process group.
    pub nprocs: usize,
    /// Number of timesteps the workflow runs for.
    pub timesteps: usize,
    /// Elements per rank in generated arrays.
    pub elements: usize,
    /// Outgoing links: dataset name → one sender per consumer of that
    /// dataset.  Only rank 0 publishes.
    pub outputs: HashMap<String, Vec<Sender<DataMessage>>>,
    /// Incoming links: dataset name → receiver.  Only rank 0 receives.
    pub inputs: HashMap<String, Receiver<DataMessage>>,
    /// Group paths per dataset (for constructing [`Dataset`] values).
    pub group_paths: HashMap<String, String>,
    /// Shared reduce group for this task.
    pub reduce: Arc<ReduceGroup>,
    /// Shared execution trace.
    pub trace: ExecutionTrace,
    /// Per-rank deterministic RNG.
    pub rng: StdRng,
    /// Timeout for sends/receives, in milliseconds.
    pub timeout_ms: u64,
    /// Collected per-timestep sums (consumers fill this in).
    pub received_sums: Vec<f64>,
    /// Inject a failure at this timestep, if set.
    pub fail_at_step: Option<usize>,
}

impl TaskContext {
    /// Emulate `MPI_Reduce(sum, ..., MPI_SUM, root=0)`: every rank
    /// contributes `local`, rank 0 receives the total.
    pub fn reduce_sum(&self, local: f64) -> Option<f64> {
        self.reduce.partials.lock().push(local);
        self.reduce.barrier.wait();
        let total = if self.rank == 0 {
            let mut partials = self.reduce.partials.lock();
            let total: f64 = partials.iter().sum();
            partials.clear();
            Some(total)
        } else {
            None
        };
        // Second barrier so no rank races ahead and pushes the next step's
        // partial before rank 0 drained this step's.
        self.reduce.barrier.wait();
        total
    }

    /// Publish a dataset to every consumer of `name` (rank 0 only; other
    /// ranks return immediately).
    pub fn publish(&self, name: &str, timestep: usize, values: &[f32]) -> Result<(), String> {
        if self.rank != 0 {
            return Ok(());
        }
        let group_path = self
            .group_paths
            .get(name)
            .cloned()
            .unwrap_or_else(|| format!("/group1/{name}"));
        let dataset = Dataset::from_f32(name, &group_path, values);
        if let Some(senders) = self.outputs.get(name) {
            for sender in senders {
                sender
                    .send_timeout(
                        DataMessage::Step {
                            timestep,
                            dataset: dataset.clone(),
                        },
                        std::time::Duration::from_millis(self.timeout_ms),
                    )
                    .map_err(|e| {
                        format!("{}: send of `{name}` timed out or failed: {e}", self.task)
                    })?;
            }
        }
        self.trace.record(
            &self.task,
            self.rank,
            EventKind::DataPublished {
                dataset: name.to_owned(),
                timestep,
            },
        );
        Ok(())
    }

    /// Signal end-of-stream on every output link (rank 0 only).
    pub fn close_outputs(&self) {
        if self.rank != 0 {
            return;
        }
        for senders in self.outputs.values() {
            for sender in senders {
                let _ = sender.send(DataMessage::EndOfStream);
            }
        }
    }

    /// Receive the next message for dataset `name` (rank 0 only; other ranks
    /// get `EndOfStream` immediately).
    pub fn receive(&self, name: &str) -> Result<DataMessage, String> {
        if self.rank != 0 {
            return Ok(DataMessage::EndOfStream);
        }
        let receiver = self
            .inputs
            .get(name)
            .ok_or_else(|| format!("{}: no input link for dataset `{name}`", self.task))?;
        receiver
            .recv_timeout(std::time::Duration::from_millis(self.timeout_ms))
            .map_err(|e| format!("{}: receive of `{name}` timed out: {e}", self.task))
    }
}

/// A task's executable behaviour; one instance is shared by all ranks.
pub trait TaskBehavior: Send + Sync {
    /// Run the task on one rank.  Returning an error marks the task failed.
    fn run(&self, ctx: &mut TaskContext) -> Result<(), String>;
}

/// The benchmark's producer: per timestep, generate a random array on every
/// rank, reduce the sums to rank 0 and publish each produced dataset.
#[derive(Debug, Default)]
pub struct ProducerBehavior;

impl TaskBehavior for ProducerBehavior {
    fn run(&self, ctx: &mut TaskContext) -> Result<(), String> {
        // Sorted so publish order (and with it the trace and any downstream
        // arrival order) is a function of the spec, not of HashMap state.
        let mut datasets: Vec<String> = ctx.outputs.keys().cloned().collect();
        datasets.sort();
        for t in 0..ctx.timesteps {
            if ctx.fail_at_step == Some(t) {
                return Err(format!("injected failure at timestep {t}"));
            }
            let array: Vec<f32> = (0..ctx.elements).map(|_| ctx.rng.gen::<f32>()).collect();
            let local_sum: f64 = array.iter().map(|&v| v as f64).sum();
            let _total = ctx.reduce_sum(local_sum);
            for name in &datasets {
                ctx.publish(name, t, &array)?;
            }
        }
        ctx.close_outputs();
        Ok(())
    }
}

/// The benchmark's consumer: receive every timestep of every consumed
/// dataset, compute its sum, and stop at end-of-stream.
#[derive(Debug, Default)]
pub struct ConsumerBehavior;

impl TaskBehavior for ConsumerBehavior {
    fn run(&self, ctx: &mut TaskContext) -> Result<(), String> {
        if ctx.rank != 0 {
            return Ok(());
        }
        // Sorted so a consumer of several datasets drains them in a stable
        // order and `received_sums` is deterministic run to run.
        let mut datasets: Vec<String> = ctx.inputs.keys().cloned().collect();
        datasets.sort();
        let mut open: HashMap<String, bool> = datasets.iter().map(|d| (d.clone(), true)).collect();
        let mut step = 0usize;
        while open.values().any(|&o| o) {
            if ctx.fail_at_step == Some(step) {
                return Err(format!("injected failure at timestep {step}"));
            }
            for name in &datasets {
                if !open[name] {
                    continue;
                }
                match ctx.receive(name)? {
                    DataMessage::Step { timestep, dataset } => {
                        ctx.trace.record(
                            &ctx.task,
                            ctx.rank,
                            EventKind::DataReceived {
                                dataset: name.clone(),
                                timestep,
                            },
                        );
                        ctx.received_sums.push(dataset.sum());
                    }
                    DataMessage::EndOfStream => {
                        open.insert(name.clone(), false);
                    }
                }
            }
            step += 1;
        }
        Ok(())
    }
}

/// A task that both consumes and produces: per round, drain one message
/// from every open input, then publish a fresh array downstream — the
/// interior stage of a chain or diamond.  The relay paces itself entirely
/// off its inputs (one publish round per received data round), so every
/// downstream consumer still sees exactly `timesteps` messages per dataset
/// without the relay needing its own step loop.
#[derive(Debug, Default)]
pub struct RelayBehavior;

impl TaskBehavior for RelayBehavior {
    fn run(&self, ctx: &mut TaskContext) -> Result<(), String> {
        if ctx.rank != 0 {
            return Ok(());
        }
        // Sorted like the other behaviours so receive and publish order are
        // functions of the spec, not of HashMap state.
        let mut inputs: Vec<String> = ctx.inputs.keys().cloned().collect();
        inputs.sort();
        let mut outputs: Vec<String> = ctx.outputs.keys().cloned().collect();
        outputs.sort();
        let mut open: HashMap<String, bool> = inputs.iter().map(|d| (d.clone(), true)).collect();
        let mut step = 0usize;
        while open.values().any(|&o| o) {
            if ctx.fail_at_step == Some(step) {
                return Err(format!("injected failure at timestep {step}"));
            }
            let mut got_data = false;
            for name in &inputs {
                if !open[name] {
                    continue;
                }
                match ctx.receive(name)? {
                    DataMessage::Step { timestep, dataset } => {
                        ctx.trace.record(
                            &ctx.task,
                            ctx.rank,
                            EventKind::DataReceived {
                                dataset: name.clone(),
                                timestep,
                            },
                        );
                        ctx.received_sums.push(dataset.sum());
                        got_data = true;
                    }
                    DataMessage::EndOfStream => {
                        open.insert(name.clone(), false);
                    }
                }
            }
            if got_data {
                let array: Vec<f32> = (0..ctx.elements).map(|_| ctx.rng.gen::<f32>()).collect();
                for name in &outputs {
                    ctx.publish(name, step, &array)?;
                }
            }
            step += 1;
        }
        ctx.close_outputs();
        Ok(())
    }
}

/// Create the deterministic per-rank RNG used by behaviours.
pub fn rank_rng(seed: u64, task: &str, rank: usize) -> StdRng {
    let mut hash = seed ^ 0x9e3779b97f4a7c15;
    for b in task.bytes() {
        hash = hash.wrapping_mul(31).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(hash.wrapping_add(rank as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::bounded;

    fn minimal_ctx(rank: usize, nprocs: usize, reduce: Arc<ReduceGroup>) -> TaskContext {
        TaskContext {
            task: "t".into(),
            rank,
            nprocs,
            timesteps: 1,
            elements: 4,
            outputs: HashMap::new(),
            inputs: HashMap::new(),
            group_paths: HashMap::new(),
            reduce,
            trace: ExecutionTrace::new(),
            rng: rank_rng(1, "t", rank),
            timeout_ms: 100,
            received_sums: Vec::new(),
            fail_at_step: None,
        }
    }

    #[test]
    fn reduce_sum_across_ranks() {
        let reduce = Arc::new(ReduceGroup::new(3));
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let reduce = reduce.clone();
                std::thread::spawn(move || {
                    let ctx = minimal_ctx(rank, 3, reduce);
                    ctx.reduce_sum((rank + 1) as f64)
                })
            })
            .collect();
        let results: Vec<Option<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let root_total: Vec<f64> = results.iter().flatten().copied().collect();
        assert_eq!(root_total, vec![6.0]);
        assert_eq!(results.iter().filter(|r| r.is_none()).count(), 2);
    }

    #[test]
    fn publish_delivers_to_all_consumers() {
        let reduce = Arc::new(ReduceGroup::new(1));
        let mut ctx = minimal_ctx(0, 1, reduce);
        let (tx1, rx1) = bounded(4);
        let (tx2, rx2) = bounded(4);
        ctx.outputs.insert("grid".into(), vec![tx1, tx2]);
        ctx.publish("grid", 0, &[1.0, 2.0]).unwrap();
        for rx in [rx1, rx2] {
            match rx.recv().unwrap() {
                DataMessage::Step { timestep, dataset } => {
                    assert_eq!(timestep, 0);
                    assert_eq!(dataset.to_f32(), vec![1.0, 2.0]);
                    assert_eq!(dataset.group_path, "/group1/grid");
                }
                other => panic!("unexpected message {other:?}"),
            }
        }
        assert_eq!(ctx.trace.published_count("grid"), 1);
    }

    #[test]
    fn non_root_rank_publish_is_a_noop() {
        let reduce = Arc::new(ReduceGroup::new(2));
        let mut ctx = minimal_ctx(1, 2, reduce);
        let (tx, rx) = bounded(1);
        ctx.outputs.insert("grid".into(), vec![tx]);
        ctx.publish("grid", 0, &[1.0]).unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn receive_times_out_when_no_producer() {
        let reduce = Arc::new(ReduceGroup::new(1));
        let mut ctx = minimal_ctx(0, 1, reduce);
        let (_tx, rx) = bounded::<DataMessage>(1);
        ctx.inputs.insert("grid".into(), rx);
        ctx.timeout_ms = 10;
        let err = ctx.receive("grid").unwrap_err();
        assert!(err.contains("timed out"));
    }

    #[test]
    fn receive_unknown_dataset_errors() {
        let reduce = Arc::new(ReduceGroup::new(1));
        let ctx = minimal_ctx(0, 1, reduce);
        assert!(ctx.receive("missing").is_err());
    }

    #[test]
    fn rank_rng_is_deterministic_and_rank_dependent() {
        let a: Vec<u32> = {
            let mut r = rank_rng(7, "producer", 0);
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = rank_rng(7, "producer", 0);
            (0..4).map(|_| r.gen()).collect()
        };
        let c: Vec<u32> = {
            let mut r = rank_rng(7, "producer", 1);
            (0..4).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn producer_behavior_fails_when_injected() {
        let reduce = Arc::new(ReduceGroup::new(1));
        let mut ctx = minimal_ctx(0, 1, reduce);
        ctx.fail_at_step = Some(0);
        let err = ProducerBehavior.run(&mut ctx).unwrap_err();
        assert!(err.contains("injected failure"));
    }
}
