//! Umbrella crate for the `wfspeak` reproduction of conf_sc_YildizP25.
//!
//! Re-exports every subsystem under one roof so downstream users (and the
//! workspace-level integration tests and examples) can depend on a single
//! crate:
//!
//! * [`metrics`] — BLEU/ChrF scoring, score matrices and statistics
//! * [`core`] — the benchmark runner, experiments and reports
//! * [`corpus`] — prompts, references and task codes
//! * [`llm`] — the simulated model clients
//! * [`systems`] — workflow-system models and validators
//! * [`runtime`] — the in-situ workflow execution engine
//! * [`codemodel`] — code extraction and comparison helpers
//! * [`wyaml`] — the minimal YAML subset used by configurations
//! * [`service`] — the batch scoring server and its client

pub use wfspeak_codemodel as codemodel;
pub use wfspeak_core as core;
pub use wfspeak_corpus as corpus;
pub use wfspeak_llm as llm;
pub use wfspeak_metrics as metrics;
pub use wfspeak_runtime as runtime;
pub use wfspeak_service as service;
pub use wfspeak_systems as systems;
pub use wfspeak_wyaml as wyaml;
